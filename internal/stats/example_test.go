package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleSample_Percentile tails a latency-like distribution: 100
// observations of 1 unit plus a handful of stragglers. The median and
// p90 sit in the bulk; p99 exposes the tail, interpolated between the
// closest ranks.
func ExampleSample_Percentile() {
	var s stats.Sample
	for i := 0; i < 100; i++ {
		s.Add(1)
	}
	for _, straggler := range []float64{10, 20, 40} {
		s.Add(straggler)
	}

	fmt.Printf("n=%d mean=%.2f\n", s.N(), s.Mean())
	for _, p := range []float64{50, 90, 99, 100} {
		fmt.Printf("p%g=%.1f\n", p, s.Percentile(p))
	}
	// Output:
	// n=103 mean=1.65
	// p50=1.0
	// p90=1.0
	// p99=19.8
	// p100=40.0
}
