// Package stats provides the measurement plumbing for the benchmark
// harness: throughput accounting, summary statistics, percentiles, and
// plain-text table rendering in the style of the paper's Table 1.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Mbps converts a byte count moved in elapsed time into megabits per
// second, "the normal rating for protocols" (paper, §4). It returns 0 for
// non-positive elapsed times.
func Mbps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / elapsed.Seconds()
}

// Sample accumulates observations and reports summary statistics.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
}

// AddDuration records a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// StdDev returns the population standard deviation, or 0 when fewer than
// two observations exist.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Counter is a monotone event/byte counter with a convenience rate.
type Counter struct {
	Events int64
	Bytes  int64
}

// AddBytes records one event carrying n bytes.
func (c *Counter) AddBytes(n int) {
	c.Events++
	c.Bytes += int64(n)
}

// RateMbps returns the counter's byte volume as Mb/s over elapsed.
func (c *Counter) RateMbps(elapsed time.Duration) float64 {
	return Mbps(c.Bytes, elapsed)
}

// Table renders aligned plain-text tables for the experiment harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: 3 significant-ish decimals for
// small values, fewer for large ones.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		for i, w := range width {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", w))
		}
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting: the
// harness emits only numbers and simple identifiers).
func (t *Table) CSV() string {
	var b strings.Builder
	if len(t.header) > 0 {
		b.WriteString(strings.Join(t.header, ","))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
