package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMbps(t *testing.T) {
	// 1 MB in one second = 8 Mb/s.
	if got := Mbps(1e6, time.Second); got != 8 {
		t.Errorf("Mbps(1e6, 1s) = %v, want 8", got)
	}
	if got := Mbps(1e6, 0); got != 0 {
		t.Errorf("Mbps with zero elapsed = %v, want 0", got)
	}
	if got := Mbps(1e6, -time.Second); got != 0 {
		t.Errorf("Mbps with negative elapsed = %v, want 0", got)
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample should report zeros")
	}
	for _, x := range []float64{4, 1, 3, 2} {
		s.Add(x)
	}
	if s.N() != 4 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	wantSD := math.Sqrt(1.25)
	if math.Abs(s.StdDev()-wantSD) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev(), wantSD)
	}
}

func TestSamplePercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Percentile must be monotone in p.
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := s.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v", p)
		}
		prev = v
	}
}

func TestSampleAddAfterPercentile(t *testing.T) {
	// Adding after a sorted read must keep statistics correct.
	var s Sample
	s.Add(5)
	_ = s.Percentile(50)
	s.Add(1)
	if s.Min() != 1 {
		t.Errorf("Min after re-add = %v, want 1", s.Min())
	}
}

func TestSamplePercentileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		ok := false
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
			ok = true
		}
		if !ok {
			return true
		}
		p50 := s.Percentile(50)
		return p50 >= s.Min() && p50 <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleMeanWithinBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) || math.Abs(x) > 1e12 {
				continue
			}
			s.Add(x)
			n++
		}
		if n == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.AddBytes(500)
	c.AddBytes(500)
	if c.Events != 2 || c.Bytes != 1000 {
		t.Errorf("counter = %+v", c)
	}
	if got := c.RateMbps(time.Millisecond); math.Abs(got-8) > 1e-9 {
		t.Errorf("RateMbps = %v, want 8", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("op", "Mb/s")
	tb.AddRow("Copy", 130.0)
	tb.AddRow("Checksum", 115.0)
	out := tb.String()
	if !strings.Contains(out, "Copy") || !strings.Contains(out, "130") {
		t.Errorf("table missing data:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Errorf("line count = %d, want 4:\n%s", len(lines), out)
	}
	// Columns should align: every line same width per column prefix.
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Errorf("missing header rule:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2.5)
	csv := tb.CSV()
	want := "a,b\n1,2.50\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{12345, "12345"},
		{42.25, "42.2"},
		{3.14159, "3.14"},
		{0.12345, "0.1235"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSampleAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Errorf("Mean = %v, want 1.5", s.Mean())
	}
}
