package telemetry

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// The disabled recorder must cost a nil-check branch and nothing else:
// the acceptance bar is a few ns/op at most.
func BenchmarkDisabledSample(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Sample()
	}
}

func BenchmarkDisabledSampleAt(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SampleAt(sim.Time(i))
	}
}

// A live sampling tick over a realistically sized registry (64
// counters, 32 gauges, 8 histograms): the per-tick cost a run pays
// for the flight record. Not on any per-packet path.
func BenchmarkSampleTick(b *testing.B) {
	reg := metrics.New()
	for i := 0; i < 8; i++ {
		scope := reg.Scope("shard=" + string(rune('0'+i)))
		for j := 0; j < 8; j++ {
			scope.Counter("bench.ctr" + string(rune('0'+j))).Add(int64(i + j))
		}
		for j := 0; j < 4; j++ {
			scope.Gauge("bench.gauge" + string(rune('0'+j))).Set(int64(j))
		}
		scope.Histogram("bench.lat_ns").Observe(int64(1000 * (i + 1)))
	}
	r := New(Config{Interval: time.Millisecond, Capacity: 512})
	r.Bind(nil, reg, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SampleAt(sim.Time(i + 1))
	}
}
