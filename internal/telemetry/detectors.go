package telemetry

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Finding is one series a detector considers unhealthy this tick. The
// recorder edge-triggers these into Incidents: one incident when the
// finding first appears, one "cleared" incident when it stops.
type Finding struct {
	Series  string
	Message string
}

// Detector is a health check evaluated at the end of every sampling
// tick against the recorded history. Implementations may keep
// per-series state (consecutive-tick counters, arming latches) and are
// therefore owned by a single Recorder. Check must enumerate series
// through the recorder's ordered accessors (MatchName, Each) so
// findings come out in deterministic order.
type Detector interface {
	Name() string
	Check(r *Recorder) []Finding
}

// limitFor resolves a capacity limit for a series: the companion
// limit-series sharing the data series' labels (e.g.
// relay.storage_limit_bytes{relay=r1} for relay.stored_bytes{relay=r1})
// when present, else the static fallback.
func limitFor(r *Recorder, dataName, dataID, limitName string, static int64) int64 {
	if limitName != "" {
		if ls := r.Series(limitName + strings.TrimPrefix(dataID, dataName)); ls != nil && ls.Last() > 0 {
			return ls.Last()
		}
	}
	return static
}

// RateCollapse fires when a delivery-rate counter, having once been
// healthy, stays below a floor for Ticks consecutive sampling
// intervals — the paper's rate-collapse failure mode (an AIMD source
// backing off to nothing, or a path going dark) seen from the series.
type RateCollapse struct {
	// Series is the counter metric name to watch (all labeled variants).
	Series string
	// FloorPerSec is the per-second rate below which the series counts
	// as collapsed.
	FloorPerSec float64
	// Ticks is how many consecutive below-floor intervals fire the
	// detector (default 3).
	Ticks int

	armed map[string]bool
	below map[string]int
}

// Name implements Detector.
func (d *RateCollapse) Name() string { return "rate-collapse" }

// Check implements Detector.
func (d *RateCollapse) Check(r *Recorder) []Finding {
	if d.armed == nil {
		d.armed, d.below = make(map[string]bool), make(map[string]int)
	}
	ticks := d.Ticks
	if ticks <= 0 {
		ticks = 3
	}
	var out []Finding
	for _, s := range r.MatchName(d.Series) {
		if s.Kind != Delta {
			continue
		}
		rate := r.LastRate(s)
		switch {
		case rate >= d.FloorPerSec:
			d.armed[s.ID] = true
			d.below[s.ID] = 0
		case d.armed[s.ID]:
			d.below[s.ID]++
		}
		if d.below[s.ID] >= ticks {
			out = append(out, Finding{Series: s.ID,
				Message: fmt.Sprintf("rate %.0f/s below floor %.0f/s for %d ticks", rate, d.FloorPerSec, d.below[s.ID])})
		}
	}
	return out
}

// NearCapacity fires while a gauge sits at or above Frac of its
// capacity limit — a custody store nearing StorageLimit during a
// conjunction, say. The limit is read from the companion LimitSeries
// (matching labels) when registered, falling back to the static Limit;
// with neither, the detector stays dormant.
type NearCapacity struct {
	// Series is the gauge metric name to watch.
	Series string
	// LimitSeries optionally names a gauge carrying the limit, matched
	// label-for-label with Series.
	LimitSeries string
	// Limit is the static fallback capacity.
	Limit int64
	// Frac is the occupancy fraction that fires (default 0.9).
	Frac float64
}

// Name implements Detector.
func (d *NearCapacity) Name() string { return "near-capacity" }

// Check implements Detector.
func (d *NearCapacity) Check(r *Recorder) []Finding {
	frac := d.Frac
	if frac <= 0 {
		frac = 0.9
	}
	var out []Finding
	for _, s := range r.MatchName(d.Series) {
		if s.Kind != Level || s.Len() == 0 {
			continue
		}
		limit := limitFor(r, d.Series, s.ID, d.LimitSeries, d.Limit)
		if limit <= 0 {
			continue
		}
		if v := s.Last(); float64(v) >= frac*float64(limit) {
			out = append(out, Finding{Series: s.ID,
				Message: fmt.Sprintf("occupancy %d of limit %d (>= %.0f%%)", v, limit, frac*100)})
		}
	}
	return out
}

// ShedStorm fires when the load-shedding counter runs hot — at least
// PerSec sheds per second for Ticks consecutive intervals — meaning
// the endpoint is in sustained overload, not an isolated burst.
type ShedStorm struct {
	// Series is the shed counter name (default "core.send.shed_adus").
	Series string
	// PerSec is the shed rate that counts as a storm (default 50).
	PerSec float64
	// Ticks is how many consecutive hot intervals fire (default 2).
	Ticks int

	hot map[string]int
}

// Name implements Detector.
func (d *ShedStorm) Name() string { return "shed-storm" }

// Check implements Detector.
func (d *ShedStorm) Check(r *Recorder) []Finding {
	if d.hot == nil {
		d.hot = make(map[string]int)
	}
	name := d.Series
	if name == "" {
		name = "core.send.shed_adus"
	}
	per := d.PerSec
	if per <= 0 {
		per = 50
	}
	ticks := d.Ticks
	if ticks <= 0 {
		ticks = 2
	}
	var out []Finding
	for _, s := range r.MatchName(name) {
		if s.Kind != Delta {
			continue
		}
		if rate := r.LastRate(s); rate >= per {
			d.hot[s.ID]++
		} else {
			d.hot[s.ID] = 0
		}
		if d.hot[s.ID] >= ticks {
			out = append(out, Finding{Series: s.ID,
				Message: fmt.Sprintf("shedding %.0f ADUs/s for %d ticks", r.LastRate(s), d.hot[s.ID])})
		}
	}
	return out
}

// QueueSaturation fires when a link queue-depth gauge sits at or above
// Frac of the queue limit for Ticks consecutive intervals: the
// standing-queue signature of a congested bottleneck.
type QueueSaturation struct {
	// Series is the depth gauge name (default "netsim.link.queue_depth").
	Series string
	// LimitSeries optionally names the per-link limit gauge (default
	// "netsim.link.queue_limit").
	LimitSeries string
	// Limit is the static fallback queue limit.
	Limit int64
	// Frac is the depth fraction that counts as saturated (default 0.9).
	Frac float64
	// Ticks is how many consecutive saturated intervals fire (default 3).
	Ticks int

	sat map[string]int
}

// Name implements Detector.
func (d *QueueSaturation) Name() string { return "queue-saturation" }

// Check implements Detector.
func (d *QueueSaturation) Check(r *Recorder) []Finding {
	if d.sat == nil {
		d.sat = make(map[string]int)
	}
	name := d.Series
	if name == "" {
		name = "netsim.link.queue_depth"
	}
	limitName := d.LimitSeries
	if limitName == "" {
		limitName = "netsim.link.queue_limit"
	}
	frac := d.Frac
	if frac <= 0 {
		frac = 0.9
	}
	ticks := d.Ticks
	if ticks <= 0 {
		ticks = 3
	}
	var out []Finding
	for _, s := range r.MatchName(name) {
		if s.Kind != Level || s.Len() == 0 {
			continue
		}
		limit := limitFor(r, name, s.ID, limitName, d.Limit)
		if limit <= 0 {
			continue
		}
		if float64(s.Last()) >= frac*float64(limit) {
			d.sat[s.ID]++
		} else {
			d.sat[s.ID] = 0
		}
		if d.sat[s.ID] >= ticks {
			out = append(out, Finding{Series: s.ID,
				Message: fmt.Sprintf("queue depth %d of limit %d for %d ticks", s.Last(), limit, d.sat[s.ID])})
		}
	}
	return out
}

// BackoffSaturation fires while a sender's heartbeat interval gauge
// has climbed to its configured ceiling — the sender has given up
// probing faster and is coasting at maximum backoff, which on a DTN
// path marks the depth of a blackout.
type BackoffSaturation struct {
	// Series is the interval gauge name (default
	// "core.send.heartbeat_interval_ns").
	Series string
	// Ceil is the configured maximum heartbeat interval; levels at or
	// above it fire. Zero disables the detector.
	Ceil sim.Duration
}

// Name implements Detector.
func (d *BackoffSaturation) Name() string { return "backoff-saturation" }

// Check implements Detector.
func (d *BackoffSaturation) Check(r *Recorder) []Finding {
	if d.Ceil <= 0 {
		return nil
	}
	name := d.Series
	if name == "" {
		name = "core.send.heartbeat_interval_ns"
	}
	var out []Finding
	for _, s := range r.MatchName(name) {
		if s.Kind != Level || s.Len() == 0 {
			continue
		}
		if v := s.Last(); v >= int64(d.Ceil) {
			out = append(out, Finding{Series: s.ID,
				Message: fmt.Sprintf("heartbeat backoff %v at ceiling %v", sim.Duration(v), d.Ceil)})
		}
	}
	return out
}

// ShardImbalance fires when per-shard throughput skews: across the
// labeled variants of a counter family that carry a "shard=" label,
// the busiest shard's last-interval delta exceeds MaxRatio times the
// idlest's for Ticks consecutive intervals. A shard at zero while any
// other moves counts as infinitely imbalanced. One finding covers the
// family.
type ShardImbalance struct {
	// Series is the counter family to compare across shards.
	Series string
	// MaxRatio is the max/min delta ratio that counts as imbalanced
	// (default 4).
	MaxRatio float64
	// Ticks is how many consecutive imbalanced intervals fire
	// (default 3).
	Ticks int

	skewed int
}

// Name implements Detector.
func (d *ShardImbalance) Name() string { return "shard-imbalance" }

// Check implements Detector.
func (d *ShardImbalance) Check(r *Recorder) []Finding {
	ratio := d.MaxRatio
	if ratio <= 0 {
		ratio = 4
	}
	ticks := d.Ticks
	if ticks <= 0 {
		ticks = 3
	}
	var minD, maxD int64
	shards := 0
	for _, s := range r.MatchName(d.Series) {
		if s.Kind != Delta || !strings.Contains(s.ID, "shard=") || s.Len() == 0 {
			continue
		}
		v := s.Last()
		if shards == 0 || v < minD {
			minD = v
		}
		if shards == 0 || v > maxD {
			maxD = v
		}
		shards++
	}
	imbalanced := false
	if shards >= 2 && maxD > 0 {
		imbalanced = minD == 0 || float64(maxD) > ratio*float64(minD)
	}
	if imbalanced {
		d.skewed++
	} else {
		d.skewed = 0
	}
	if d.skewed >= ticks {
		return []Finding{{Series: d.Series,
			Message: fmt.Sprintf("shard delta spread %d..%d exceeds %.0fx across %d shards for %d ticks", minD, maxD, ratio, shards, d.skewed)}}
	}
	return nil
}

// DefaultDetectors is the standard catalog the chaos harnesses wire
// in: delivery-rate collapse, custody-store and link-queue capacity
// pressure, shed storms, and heartbeat-backoff saturation. Zero-valued
// inputs leave the corresponding detector dormant (capacity detectors
// still pick up per-series limit gauges when registered).
func DefaultDetectors(deliveryFloorPerSec float64, storeLimit, queueLimit int64, hbCeil sim.Duration) []Detector {
	return []Detector{
		&RateCollapse{Series: "core.recv.delivered_bytes", FloorPerSec: deliveryFloorPerSec},
		&NearCapacity{Series: "relay.stored_bytes", LimitSeries: "relay.storage_limit_bytes", Limit: storeLimit},
		&ShedStorm{},
		&QueueSaturation{Limit: queueLimit},
		&BackoffSaturation{Ceil: hbCeil},
	}
}
