package telemetry

import (
	"encoding/json"
	"io"
	"os"
)

// DumpSeries is one series in a black-box dump. Samples are
// oldest-first and tail-aligned with TimesNS: the last sample
// corresponds to the last tick time, so a series that appeared
// mid-window simply has fewer samples.
type DumpSeries struct {
	ID      string  `json:"id"`
	Kind    string  `json:"kind"`
	Samples []int64 `json:"samples"`
}

// Dump is the machine-readable post-mortem a failing run leaves
// behind: the retained window of every recorded series plus the
// incident log.
type Dump struct {
	NowNS            int64        `json:"now_ns"`
	IntervalNS       int64        `json:"interval_ns"`
	Ticks            int          `json:"ticks"`
	Capacity         int          `json:"capacity"`
	TimesNS          []int64      `json:"times_ns"`
	Series           []DumpSeries `json:"series"`
	Incidents        []Incident   `json:"incidents"`
	IncidentsDropped int          `json:"incidents_dropped,omitempty"`
}

// Dump materializes the recorder state. A nil recorder returns an
// empty dump.
func (r *Recorder) Dump() *Dump {
	d := &Dump{}
	if r == nil {
		return d
	}
	d.NowNS = int64(r.lastAt)
	d.IntervalNS = int64(r.cfg.Interval)
	d.Ticks = r.ticks
	d.Capacity = r.cfg.Capacity
	w := r.window()
	d.TimesNS = make([]int64, w)
	for i := 0; i < w; i++ {
		d.TimesNS[i] = r.times.at(i)
	}
	r.Each(func(s *Series) {
		ds := DumpSeries{ID: s.ID, Kind: s.Kind.String(), Samples: make([]int64, s.Len())}
		for i := range ds.Samples {
			ds.Samples[i] = s.At(i)
		}
		d.Series = append(d.Series, ds)
	})
	d.Incidents = append(d.Incidents, r.incidents...)
	d.IncidentsDropped = r.incidentsDropped
	return d
}

// WriteDump serializes the dump as indented JSON. A nil recorder
// writes an empty dump, so failure paths need no nil guard.
func (r *Recorder) WriteDump(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Dump())
}

// WriteDumpFile writes the dump to path (0644, truncating).
func (r *Recorder) WriteDumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteDump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
