package telemetry

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// ramp is the ASCII density ramp sparklines draw with, low to high.
const ramp = " .:-=+*#%@"

// WriteCSV renders the retained window as a wide CSV table: one row
// per tick (tick index, virtual seconds), one column per series in ID
// order. Series that appeared mid-window have empty cells before
// their birth. A nil recorder writes only the header.
func (r *Recorder) WriteCSV(w io.Writer) error {
	series := r.Match("")
	var b strings.Builder
	b.WriteString("tick,time_s")
	for _, s := range series {
		b.WriteByte(',')
		// Commas inside IDs (multi-label series) would split the column.
		b.WriteString(strings.ReplaceAll(s.ID, ",", ";"))
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	if r == nil {
		return nil
	}
	win := r.window()
	for j := 0; j < win; j++ {
		b.Reset()
		fmt.Fprintf(&b, "%d,%.6f", r.ticks-win+j+1, sim.Time(r.times.at(j)).Seconds())
		for _, s := range series {
			b.WriteByte(',')
			if sj := s.Len() - (win - j); sj >= 0 {
				fmt.Fprintf(&b, "%d", s.At(sj))
			}
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders the last width samples of a series as an ASCII
// density strip scaled to the window's min..max.
func Sparkline(s *Series, width int) string {
	if width <= 0 {
		width = 60
	}
	n := s.Len()
	if n == 0 {
		return ""
	}
	if n > width {
		n = width
	}
	lo, hi := s.At(s.Len()-n), s.At(s.Len()-n)
	for i := s.Len() - n; i < s.Len(); i++ {
		if v := s.At(i); v < lo {
			lo = v
		} else if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for i := s.Len() - n; i < s.Len(); i++ {
		v := s.At(i)
		idx := 0
		if hi > lo {
			idx = int(int64(len(ramp)-1) * (v - lo) / (hi - lo))
		} else if v != 0 {
			idx = len(ramp) / 2
		}
		b.WriteByte(ramp[idx])
	}
	return b.String()
}

// WriteSparklines renders every series whose ID contains filter ("" or
// "all" for everything) as labeled sparkline timelines over the
// retained window, followed by the incident log. width bounds the
// strip length (default 60).
func (r *Recorder) WriteSparklines(w io.Writer, filter string, width int) error {
	if width <= 0 {
		width = 60
	}
	series := r.Match(filter)
	if r == nil || len(series) == 0 {
		_, err := fmt.Fprintf(w, "no recorded series match %q\n", filter)
		return err
	}
	win := r.window()
	from, to := r.TimeAt(0), r.TimeAt(win-1)
	if _, err := fmt.Fprintf(w, "flight record: %d ticks, %v .. %v (interval %v)\n",
		r.ticks, from, to, r.cfg.Interval); err != nil {
		return err
	}
	idW := 0
	for _, s := range series {
		if len(s.ID) > idW {
			idW = len(s.ID)
		}
	}
	for _, s := range series {
		lo, hi := s.Last(), s.Last()
		for i := 0; i < s.Len(); i++ {
			if v := s.At(i); v < lo {
				lo = v
			} else if v > hi {
				hi = v
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s| min=%d max=%d last=%d (%s)\n",
			idW, s.ID, Sparkline(s, width), lo, hi, s.Last(), s.Kind); err != nil {
			return err
		}
	}
	return r.WriteIncidents(w)
}

// WriteIncidents renders the incident log, one line per incident.
func (r *Recorder) WriteIncidents(w io.Writer) error {
	if r == nil || len(r.incidents) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "incidents (%d", len(r.incidents)); err != nil {
		return err
	}
	if r.incidentsDropped > 0 {
		if _, err := fmt.Fprintf(w, ", %d older dropped", r.incidentsDropped); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "):"); err != nil {
		return err
	}
	for _, inc := range r.incidents {
		target := inc.Series
		if target == "" {
			target = "-"
		}
		if _, err := fmt.Fprintf(w, "  %12v  %-20s %s: %s\n", inc.At, inc.Detector, target, inc.Message); err != nil {
			return err
		}
	}
	return nil
}
