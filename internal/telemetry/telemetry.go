// Package telemetry is the time-resolved layer of the observability
// plane: a virtual-clock flight recorder that periodically samples a
// metrics.Registry into fixed-capacity ring buffers of per-series
// samples, evaluates pluggable health detectors against the recorded
// history, and serializes a black-box post-mortem dump when a run
// fails.
//
// The paper's argument (§4–§5) is that a transport's *dynamics* —
// control-state convergence, rate adaptation, loss recovery — matter
// more than any point-in-time total. metrics.Snapshot shows totals;
// tracing shows one ADU's lifecycle; the recorder shows every series
// *over time*: the AIMD controller hunting, a custody store filling
// across a 40-minute conjunction, shard imbalance at a million flows.
//
// # Sample kinds
//
// Counters are recorded as per-interval deltas (the increment since
// the previous tick), gauges as instantaneous levels, and histograms
// as interval distributions: each histogram spawns derived series
// "<id>|count" (observations this interval), "<id>|p50" and "<id>|p99"
// (quantiles of this interval's observations only, computed by
// diffing raw bucket counts between ticks).
//
// # Ownership and determinism
//
// A Recorder belongs to one run: bind it to the run's scheduler and
// registry, never share one across runs, and never sample it from two
// goroutines at once. Sampling ticks fire on the virtual clock (or at
// sharded barrier epochs via SampleAt), every input it reads is
// deterministic for the seed, and series are enumerated in sorted-ID
// order — so two runs with the same seed produce bit-identical dumps.
//
// # Cost when disabled
//
// Like the rest of the observability plane, everything is safe on a
// nil *Recorder: a nil recorder schedules nothing, records nothing,
// and each guard is one predictable branch, so a run wired with a nil
// recorder pays ~0.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// SampleKind discriminates what a recorded sample means.
type SampleKind uint8

const (
	// Delta samples carry a counter's increment over one sampling
	// interval (first sample: increment since the recorder's baseline).
	Delta SampleKind = iota
	// Level samples carry a gauge's instantaneous value at the tick.
	Level
	// Quantile samples carry a quantile of the observations a histogram
	// absorbed during one sampling interval.
	Quantile
)

// String names the kind as it appears in dumps and CSV headers.
func (k SampleKind) String() string {
	switch k {
	case Delta:
		return "delta"
	case Level:
		return "level"
	case Quantile:
		return "quantile"
	default:
		return "unknown"
	}
}

// ring is a fixed-capacity overwrite-oldest buffer of int64 samples.
type ring struct {
	buf []int64 // len == capacity once allocated
	n   int     // total samples ever pushed
}

func newRing(capacity int) ring { return ring{buf: make([]int64, capacity)} }

func (r *ring) push(v int64) {
	r.buf[r.n%len(r.buf)] = v
	r.n++
}

// length returns the number of retained samples (≤ capacity).
func (r *ring) length() int {
	if r.n < len(r.buf) {
		return r.n
	}
	return len(r.buf)
}

// at returns retained sample i, oldest-first (0 ≤ i < length).
func (r *ring) at(i int) int64 {
	if r.n <= len(r.buf) {
		return r.buf[i]
	}
	return r.buf[(r.n+i)%len(r.buf)]
}

// Series is the recorded history of one metric series: a ring of
// samples, one per sampling tick since the series was first seen. The
// newest sample of every series corresponds to the recorder's newest
// tick, so series windows align at the tail even when a series
// appeared mid-run or the ring has wrapped.
type Series struct {
	ID   string
	Kind SampleKind

	ring    ring
	prevRaw int64 // Delta: last raw cumulative value seen
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return s.ring.length()
}

// At returns retained sample i, oldest-first.
func (s *Series) At(i int) int64 { return s.ring.at(i) }

// Last returns the newest sample, or 0 when empty.
func (s *Series) Last() int64 {
	if n := s.Len(); n > 0 {
		return s.ring.at(n - 1)
	}
	return 0
}

// Config parameterizes a Recorder. The zero value is usable: every
// field has a default.
type Config struct {
	// Interval is the virtual-time sampling period (default 100ms).
	// Multi-hour soaks want seconds; short overload runs want tens of
	// milliseconds. Capacity x Interval is the recorded window.
	Interval sim.Duration
	// Capacity is the per-series ring size in samples (default 512).
	Capacity int
	// MaxIncidents bounds the incident log (default 512); when full the
	// oldest incidents are dropped, keeping the ones nearest the crash.
	MaxIncidents int
	// Detectors are evaluated, in order, at the end of every sampling
	// tick. Detector state is per-recorder: do not share constructed
	// detectors between recorders.
	Detectors []Detector
}

// histState carries the previous tick's raw bucket counts for one
// histogram, so each tick diffs against it to get the interval
// distribution.
type histState struct {
	prev      [metrics.NumBuckets]int64
	prevCount int64
}

// Recorder is the flight recorder. Create with New, wire with Bind
// (or drive manually with SampleAt), and read back with Series/Match/
// Times/Incidents or the dump/render entry points. All methods are
// safe on a nil receiver.
type Recorder struct {
	cfg   Config
	reg   *metrics.Registry
	sched *sim.Scheduler

	times  ring
	ticks  int
	lastAt sim.Time

	series map[string]*Series
	order  []*Series // sorted by ID; rebuilt when dirty
	dirty  bool
	hists  map[string]*histState

	incidents        []Incident
	incidentsDropped int
	firing           map[string]bool // "det\x00series" keys asserted last tick

	scratch [metrics.NumBuckets]int64
	diff    [metrics.NumBuckets]int64
}

// New returns a recorder with cfg's zero fields defaulted. The
// recorder does nothing until bound (or manually sampled).
func New(cfg Config) *Recorder {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if cfg.MaxIncidents <= 0 {
		cfg.MaxIncidents = 512
	}
	return &Recorder{
		cfg:    cfg,
		times:  newRing(cfg.Capacity),
		series: make(map[string]*Series),
		hists:  make(map[string]*histState),
		firing: make(map[string]bool),
	}
}

// Bind attaches the recorder to a run: reg is the registry to sample
// and s the scheduler whose clock stamps the ticks. When s is non-nil
// and until > now, a recurring sampling event fires every Interval,
// stopping at the until horizon or as soon as the scheduler's queue
// has otherwise drained — the recorder never keeps a run alive, so
// drain loops that run until idle still terminate. Pass a nil s to
// drive sampling manually with SampleAt (the sharded-barrier mode).
//
// Bind also takes a baseline reading of every already-registered
// counter and histogram so the first tick's deltas cover exactly the
// first interval. Binding a nil recorder is a no-op.
func (r *Recorder) Bind(s *sim.Scheduler, reg *metrics.Registry, until sim.Time) {
	if r == nil {
		return
	}
	r.reg = reg
	r.sched = s
	r.baseline()
	if s == nil {
		return
	}
	r.lastAt = s.Now()
	if until <= s.Now() {
		return
	}
	iv := r.cfg.Interval
	s.Every(iv, func() bool {
		r.record(s.Now())
		return s.Now().Add(iv) <= until && s.Pending() > 0
	})
}

// baseline initializes Delta and histogram previous-values from the
// registry's current state without recording a tick.
func (r *Recorder) baseline() {
	r.reg.Visit(func(id string, kind metrics.Kind, v int64, h *metrics.Histogram) {
		switch {
		case h != nil:
			hs := r.histStateFor(id)
			hs.prevCount = h.ReadCounts(&hs.prev)
		case kind == metrics.KindCounter:
			r.seriesFor(id, Delta).prevRaw = v
		}
	})
}

// SampleAt records one sampling tick stamped at now, reading every
// registry series and then running the detectors. It is the manual
// twin of the Bind-scheduled tick, used where the safe sampling points
// are externally defined — the sharded endpoint's barrier epochs. A
// duplicate call at the recorder's newest tick time is ignored.
func (r *Recorder) SampleAt(now sim.Time) {
	if r == nil {
		return
	}
	r.record(now)
}

// Sample forces one tick at the bound scheduler's current time — the
// final post-drain reading a soak takes before checking invariants,
// so the dump's newest samples reflect the end state.
func (r *Recorder) Sample() {
	if r == nil || r.sched == nil {
		return
	}
	r.record(r.sched.Now())
}

// record is the sampling tick.
func (r *Recorder) record(now sim.Time) {
	if r.ticks > 0 && now == r.lastAt {
		return
	}
	r.times.push(int64(now))
	r.ticks++
	r.lastAt = now

	r.reg.Visit(func(id string, kind metrics.Kind, v int64, h *metrics.Histogram) {
		switch {
		case h != nil:
			r.recordHistogram(id, h)
		case kind == metrics.KindCounter:
			s := r.seriesFor(id, Delta)
			r.catchUp(s)
			s.ring.push(v - s.prevRaw)
			s.prevRaw = v
		default:
			s := r.seriesFor(id, Level)
			r.catchUp(s)
			s.ring.push(v)
		}
	})

	r.detect(now)
}

// catchUp pads a series that missed ticks (registered mid-run) with
// zero samples so its tail stays aligned with the time ring: after
// this, the series has exactly one slot per tick before the current
// one. At most a ring's worth of zeros is written; the logical count
// then jumps, since older padding would have been overwritten anyway.
func (r *Recorder) catchUp(s *Series) {
	need := r.ticks - 1 - s.ring.n
	if need <= 0 {
		return
	}
	pad := need
	if pad > len(s.ring.buf) {
		pad = len(s.ring.buf)
	}
	for i := 0; i < pad; i++ {
		s.ring.push(0)
	}
	s.ring.n = r.ticks - 1
}

// recordHistogram diffs the histogram's raw buckets against the
// previous tick and pushes the derived |count, |p50, |p99 series.
func (r *Recorder) recordHistogram(id string, h *metrics.Histogram) {
	hs := r.histStateFor(id)
	count := h.ReadCounts(&r.scratch)
	var intervalN int64
	for i := range r.scratch {
		d := r.scratch[i] - hs.prev[i]
		r.diff[i] = d
		intervalN += d
	}
	hs.prev = r.scratch
	hs.prevCount = count

	push := func(suffix string, kind SampleKind, v int64) {
		s := r.seriesFor(id+suffix, kind)
		r.catchUp(s)
		s.ring.push(v)
	}
	push("|count", Delta, intervalN)
	push("|p50", Quantile, intervalQuantile(&r.diff, intervalN, 0.50))
	push("|p99", Quantile, intervalQuantile(&r.diff, intervalN, 0.99))
}

// intervalQuantile estimates the q-th quantile of one interval's
// observations from a bucket-count diff, reporting the upper bound of
// the bucket holding rank ceil(q*n) — the same one-sided contract as
// HistogramValue.Quantile, without min/max clamps (interval extrema
// are not tracked). Empty intervals report 0.
func intervalQuantile(diff *[metrics.NumBuckets]int64, n int64, q float64) int64 {
	if n <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < metrics.NumBuckets; i++ {
		cum += diff[i]
		if cum >= rank {
			return metrics.BucketUpper(i)
		}
	}
	return metrics.BucketUpper(metrics.NumBuckets - 1)
}

// seriesFor finds or creates the recorded series for id.
func (r *Recorder) seriesFor(id string, kind SampleKind) *Series {
	if s, ok := r.series[id]; ok {
		return s
	}
	s := &Series{ID: id, Kind: kind, ring: newRing(r.cfg.Capacity)}
	r.series[id] = s
	r.dirty = true
	return s
}

func (r *Recorder) histStateFor(id string) *histState {
	if hs, ok := r.hists[id]; ok {
		return hs
	}
	hs := &histState{}
	r.hists[id] = hs
	return hs
}

// Interval returns the sampling period.
func (r *Recorder) Interval() sim.Duration {
	if r == nil {
		return 0
	}
	return r.cfg.Interval
}

// Ticks returns the number of sampling ticks recorded so far (not
// bounded by capacity).
func (r *Recorder) Ticks() int {
	if r == nil {
		return 0
	}
	return r.ticks
}

// LastTime returns the virtual time of the newest tick.
func (r *Recorder) LastTime() sim.Time {
	if r == nil {
		return 0
	}
	return r.lastAt
}

// Times returns the retained tick times, oldest-first.
func (r *Recorder) Times() []sim.Time {
	if r == nil {
		return nil
	}
	out := make([]sim.Time, r.times.length())
	for i := range out {
		out[i] = sim.Time(r.times.at(i))
	}
	return out
}

// TimeAt returns retained tick time i, oldest-first, aligned with the
// same window the series rings retain.
func (r *Recorder) TimeAt(i int) sim.Time { return sim.Time(r.times.at(i)) }

// window returns how many trailing ticks are retained.
func (r *Recorder) window() int { return r.times.length() }

// Series returns the recorded series with the exact id, or nil.
func (r *Recorder) Series(id string) *Series {
	if r == nil {
		return nil
	}
	return r.series[id]
}

// ordered returns all series sorted by ID.
func (r *Recorder) orderedSeries() []*Series {
	if r == nil {
		return nil
	}
	if r.dirty || r.order == nil {
		r.order = r.order[:0]
		for _, s := range r.series {
			r.order = append(r.order, s)
		}
		sort.Slice(r.order, func(i, j int) bool { return r.order[i].ID < r.order[j].ID })
		r.dirty = false
	}
	return r.order
}

// Each calls fn for every recorded series in ascending ID order.
func (r *Recorder) Each(fn func(*Series)) {
	for _, s := range r.orderedSeries() {
		fn(s)
	}
}

// MatchName returns, in ID order, the series belonging to the metric
// name: the exact id, any labeled variant "name{...}", and any derived
// histogram series "name|p50" etc.
func (r *Recorder) MatchName(name string) []*Series {
	var out []*Series
	for _, s := range r.orderedSeries() {
		if s.ID == name || strings.HasPrefix(s.ID, name+"{") || strings.HasPrefix(s.ID, name+"|") {
			out = append(out, s)
		}
	}
	return out
}

// Match returns, in ID order, the series whose ID contains substr
// ("" or "all" matches everything).
func (r *Recorder) Match(substr string) []*Series {
	if substr == "all" {
		substr = ""
	}
	var out []*Series
	for _, s := range r.orderedSeries() {
		if strings.Contains(s.ID, substr) {
			out = append(out, s)
		}
	}
	return out
}

// LastRate returns the newest sample of a Delta series expressed per
// second of virtual time (sample / interval between the last two
// ticks). It returns 0 before the second tick, or for non-Delta
// series.
func (r *Recorder) LastRate(s *Series) float64 {
	if r == nil || s == nil || s.Kind != Delta || s.Len() == 0 {
		return 0
	}
	w := r.window()
	if w < 2 {
		return 0
	}
	dt := (sim.Time(r.times.at(w-1)) - sim.Time(r.times.at(w-2))).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(s.Last()) / dt
}

// Incident is one timestamped detector (or manual) event.
type Incident struct {
	At       sim.Time `json:"at_ns"`
	Detector string   `json:"detector"`
	Series   string   `json:"series,omitempty"`
	Message  string   `json:"message"`
}

// Incidents returns the retained incident log, oldest-first.
func (r *Recorder) Incidents() []Incident {
	if r == nil {
		return nil
	}
	return r.incidents
}

// IncidentsDropped returns how many incidents were evicted from a
// full log.
func (r *Recorder) IncidentsDropped() int {
	if r == nil {
		return 0
	}
	return r.incidentsDropped
}

// Note appends a manual incident — the hook soak harnesses use to
// stamp invariant violations into the flight record so the dump
// carries the verdict next to the series that explain it. The
// timestamp is the newest tick time.
func (r *Recorder) Note(detector, series, format string, args ...any) {
	if r == nil {
		return
	}
	r.addIncident(Incident{At: r.lastAt, Detector: detector, Series: series, Message: fmt.Sprintf(format, args...)})
}

func (r *Recorder) addIncident(inc Incident) {
	if len(r.incidents) >= r.cfg.MaxIncidents {
		drop := len(r.incidents) - r.cfg.MaxIncidents + 1
		r.incidents = append(r.incidents[:0], r.incidents[drop:]...)
		r.incidentsDropped += drop
	}
	r.incidents = append(r.incidents, inc)
}

// detect runs the detector catalog and edge-triggers incidents: a
// finding asserted this tick but not last tick opens an incident; a
// key that stops being asserted closes with a "cleared" incident.
// Cleared keys are emitted in sorted order so the log is deterministic.
func (r *Recorder) detect(now sim.Time) {
	if len(r.cfg.Detectors) == 0 {
		return
	}
	asserted := make(map[string]bool)
	for _, det := range r.cfg.Detectors {
		name := det.Name()
		for _, f := range det.Check(r) {
			k := name + "\x00" + f.Series
			asserted[k] = true
			if !r.firing[k] {
				r.addIncident(Incident{At: now, Detector: name, Series: f.Series, Message: f.Message})
			}
		}
	}
	var cleared []string
	for k := range r.firing {
		if !asserted[k] {
			cleared = append(cleared, k)
		}
	}
	sort.Strings(cleared)
	for _, k := range cleared {
		name, series, _ := strings.Cut(k, "\x00")
		r.addIncident(Incident{At: now, Detector: name, Series: series, Message: "cleared"})
	}
	r.firing = asserted
}
