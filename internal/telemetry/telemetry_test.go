package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// buildRun wires a registry with one of each instrument into a
// scheduler that exercises them, and returns all three.
func buildRun() (*sim.Scheduler, *metrics.Registry) {
	s := sim.NewScheduler()
	reg := metrics.New()
	c := reg.Counter("run.bytes", "stream=0")
	g := reg.Gauge("run.depth")
	h := reg.Histogram("run.lat_ns")
	// 10 events, one per 100ms: counter +100 each, gauge tracks the
	// event index, histogram observes a growing latency.
	for i := 1; i <= 10; i++ {
		i := i
		s.At(sim.Time(i)*sim.Time(100*time.Millisecond), func() {
			c.Add(100)
			g.Set(int64(i))
			h.Observe(int64(i) * 1000)
		})
	}
	return s, reg
}

func TestRecorderSamplesKinds(t *testing.T) {
	s, reg := buildRun()
	rec := New(Config{Interval: 200 * time.Millisecond, Capacity: 16})
	rec.Bind(s, reg, sim.Time(time.Second))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Ticks at 200ms..1000ms: 5 ticks.
	if rec.Ticks() != 5 {
		t.Fatalf("ticks = %d, want 5", rec.Ticks())
	}
	if rec.LastTime() != sim.Time(time.Second) {
		t.Errorf("last tick at %v, want 1s", rec.LastTime())
	}

	// Counter: two events per 200ms interval -> delta 200 every tick.
	cs := rec.Series("run.bytes{stream=0}")
	if cs == nil || cs.Kind != Delta {
		t.Fatalf("counter series missing or wrong kind: %+v", cs)
	}
	for i := 0; i < cs.Len(); i++ {
		if cs.At(i) != 200 {
			t.Errorf("counter delta[%d] = %d, want 200", i, cs.At(i))
		}
	}

	// Gauge: level at tick k (t = 200ms*k) is the last event index 2k.
	gs := rec.Series("run.depth")
	if gs == nil || gs.Kind != Level {
		t.Fatalf("gauge series missing or wrong kind: %+v", gs)
	}
	for i := 0; i < gs.Len(); i++ {
		if want := int64(2 * (i + 1)); gs.At(i) != want {
			t.Errorf("gauge level[%d] = %d, want %d", i, gs.At(i), want)
		}
	}

	// Histogram: derived |count (2 obs/interval) and quantile series.
	hc := rec.Series("run.lat_ns|count")
	if hc == nil || hc.Kind != Delta {
		t.Fatalf("histogram count series missing: %+v", hc)
	}
	for i := 0; i < hc.Len(); i++ {
		if hc.At(i) != 2 {
			t.Errorf("interval count[%d] = %d, want 2", i, hc.At(i))
		}
	}
	p99 := rec.Series("run.lat_ns|p99")
	if p99 == nil || p99.Kind != Quantile {
		t.Fatalf("p99 series missing: %+v", p99)
	}
	// First interval observes 1000 and 2000: p99 ranks 2000, whose
	// bucket [1024,2047] upper bound is 2047.
	if got := p99.At(0); got != 2047 {
		t.Errorf("interval p99[0] = %d, want 2047", got)
	}
	// Interval quantiles reflect only that interval: the last interval
	// observes 9000 and 10000 (buckets [8192,16383]), not the global
	// min, so p50 there is far above early samples.
	p50 := rec.Series("run.lat_ns|p50")
	if got := p50.At(p50.Len() - 1); got != 16383 {
		t.Errorf("final interval p50 = %d, want 16383", got)
	}
}

func TestRecorderRingWrapKeepsTail(t *testing.T) {
	s, reg := buildRun()
	rec := New(Config{Interval: 100 * time.Millisecond, Capacity: 4})
	rec.Bind(s, reg, sim.Time(time.Second))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Ticks() != 10 {
		t.Fatalf("ticks = %d, want 10", rec.Ticks())
	}
	times := rec.Times()
	if len(times) != 4 {
		t.Fatalf("retained %d times, want 4", len(times))
	}
	if times[0] != sim.Time(700*time.Millisecond) || times[3] != sim.Time(time.Second) {
		t.Errorf("retained window %v..%v, want 700ms..1s", times[0], times[3])
	}
	gs := rec.Series("run.depth")
	if gs.Len() != 4 || gs.At(0) != 7 || gs.Last() != 10 {
		t.Errorf("gauge window len=%d first=%d last=%d, want 4/7/10", gs.Len(), gs.At(0), gs.Last())
	}
}

func TestRecorderStopsWhenQueueDrains(t *testing.T) {
	// The recorder must never keep a run alive: once the workload's own
	// events are done, the sampling series ends even before the horizon.
	s := sim.NewScheduler()
	reg := metrics.New()
	reg.Counter("x").Add(1)
	s.At(sim.Time(300*time.Millisecond), func() {})
	rec := New(Config{Interval: 100 * time.Millisecond})
	rec.Bind(s, reg, sim.Time(time.Hour))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", s.Pending())
	}
	// Ticks at 100..300ms fire alongside the workload; the 300ms tick
	// (after the last workload event) sees an otherwise-empty queue and
	// stops the series.
	if rec.Ticks() != 3 {
		t.Errorf("ticks = %d, want 3", rec.Ticks())
	}
	if s.Now() >= sim.Time(time.Hour) {
		t.Errorf("recorder dragged the run to its horizon: now=%v", s.Now())
	}
}

func TestSeriesBornMidRunAligns(t *testing.T) {
	s := sim.NewScheduler()
	reg := metrics.New()
	reg.Gauge("early").Set(1)
	s.At(sim.Time(450*time.Millisecond), func() {
		reg.Gauge("late").Set(9)
	})
	s.At(sim.Time(time.Second), func() {})
	rec := New(Config{Interval: 100 * time.Millisecond, Capacity: 32})
	rec.Bind(s, reg, sim.Time(time.Second))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	late := rec.Series("late")
	if late == nil {
		t.Fatal("late series not recorded")
	}
	// Born at the 500ms tick (tick 5 of 10): padded to full alignment.
	if late.Len() != rec.Ticks() {
		t.Fatalf("late series len %d, want %d (zero-padded)", late.Len(), rec.Ticks())
	}
	if late.At(0) != 0 || late.Last() != 9 {
		t.Errorf("late series first=%d last=%d, want 0/9", late.At(0), late.Last())
	}
}

func TestDetectorEdgeTriggering(t *testing.T) {
	s := sim.NewScheduler()
	reg := metrics.New()
	depth := reg.Gauge("q.depth", "link=a->b/0")
	reg.Gauge("q.limit", "link=a->b/0").Set(10)
	// Saturated from 300ms to 700ms, then recovers.
	s.At(sim.Time(300*time.Millisecond), func() { depth.Set(10) })
	s.At(sim.Time(700*time.Millisecond), func() { depth.Set(1) })
	s.At(sim.Time(time.Second), func() {})
	rec := New(Config{
		Interval:  100 * time.Millisecond,
		Detectors: []Detector{&QueueSaturation{Series: "q.depth", LimitSeries: "q.limit", Ticks: 2}},
	})
	rec.Bind(s, reg, sim.Time(time.Second))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	incs := rec.Incidents()
	if len(incs) != 2 {
		t.Fatalf("incidents = %+v, want exactly fire+clear", incs)
	}
	// Saturation holds at ticks 300..600ms; the 2nd consecutive tick is
	// 400ms. Recovery is seen at the 700ms tick.
	if incs[0].Detector != "queue-saturation" || incs[0].At != sim.Time(400*time.Millisecond) {
		t.Errorf("fire incident = %+v", incs[0])
	}
	if incs[1].Message != "cleared" || incs[1].At != sim.Time(700*time.Millisecond) {
		t.Errorf("clear incident = %+v", incs[1])
	}
}

func TestRateCollapseArming(t *testing.T) {
	s := sim.NewScheduler()
	reg := metrics.New()
	c := reg.Counter("flow.bytes", "stream=0")
	// Healthy 0..500ms (1000 bytes per 100ms = 10kB/s), then silence.
	for i := 1; i <= 5; i++ {
		s.At(sim.Time(i)*sim.Time(100*time.Millisecond), func() { c.Add(1000) })
	}
	s.At(sim.Time(time.Second)+sim.Time(200*time.Millisecond), func() {})
	det := &RateCollapse{Series: "flow.bytes", FloorPerSec: 1000, Ticks: 3}
	rec := New(Config{Interval: 100 * time.Millisecond, Detectors: []Detector{det}})
	rec.Bind(s, reg, sim.Time(time.Second+200*time.Millisecond))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	incs := rec.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %+v, want one collapse", incs)
	}
	// Below floor from the 600ms tick; 3rd consecutive is 800ms.
	if incs[0].Detector != "rate-collapse" || incs[0].At != sim.Time(800*time.Millisecond) {
		t.Errorf("collapse incident = %+v", incs[0])
	}

	// A flow that never reaches the floor must never arm.
	s2 := sim.NewScheduler()
	reg2 := metrics.New()
	reg2.Counter("flow.bytes", "stream=0")
	s2.At(sim.Time(time.Second), func() {})
	rec2 := New(Config{Interval: 100 * time.Millisecond,
		Detectors: []Detector{&RateCollapse{Series: "flow.bytes", FloorPerSec: 1000, Ticks: 3}}})
	rec2.Bind(s2, reg2, sim.Time(time.Second))
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(rec2.Incidents()); n != 0 {
		t.Errorf("unarmed flow produced %d incidents", n)
	}
}

func TestShardImbalanceDetector(t *testing.T) {
	s := sim.NewScheduler()
	reg := metrics.New()
	hot := reg.Counter("ep.delivered", "shard=0")
	reg.Counter("ep.delivered", "shard=1") // stays at zero
	for i := 1; i <= 10; i++ {
		s.At(sim.Time(i)*sim.Time(100*time.Millisecond), func() { hot.Add(100) })
	}
	det := &ShardImbalance{Series: "ep.delivered", MaxRatio: 4, Ticks: 2}
	rec := New(Config{Interval: 100 * time.Millisecond, Detectors: []Detector{det}})
	rec.Bind(s, reg, sim.Time(time.Second))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	incs := rec.Incidents()
	if len(incs) != 1 || incs[0].Detector != "shard-imbalance" {
		t.Fatalf("incidents = %+v, want one shard-imbalance", incs)
	}
	// Skew is visible from the first tick's deltas; the 2nd consecutive
	// skewed tick is 200ms.
	if incs[0].At != sim.Time(200*time.Millisecond) {
		t.Errorf("imbalance fired at %v, want 200ms", incs[0].At)
	}
}

func TestNoteAndIncidentCap(t *testing.T) {
	rec := New(Config{MaxIncidents: 3})
	for i := 0; i < 5; i++ {
		rec.Note("soak", "", "violation %d", i)
	}
	incs := rec.Incidents()
	if len(incs) != 3 || rec.IncidentsDropped() != 2 {
		t.Fatalf("cap kept %d dropped %d, want 3/2", len(incs), rec.IncidentsDropped())
	}
	if incs[0].Message != "violation 2" || incs[2].Message != "violation 4" {
		t.Errorf("cap dropped the wrong end: %+v", incs)
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	s, reg := buildRun()
	rec := New(Config{Interval: 200 * time.Millisecond, Capacity: 8})
	rec.Bind(s, reg, sim.Time(time.Second))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Note("soak", "", "lost ADU 7")
	var buf bytes.Buffer
	if err := rec.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Ticks != 5 || len(d.TimesNS) != 5 {
		t.Errorf("dump ticks=%d times=%d, want 5/5", d.Ticks, len(d.TimesNS))
	}
	ids := map[string]bool{}
	for _, ds := range d.Series {
		ids[ds.ID] = true
		if len(ds.Samples) != 5 {
			t.Errorf("series %s has %d samples, want 5", ds.ID, len(ds.Samples))
		}
	}
	for _, want := range []string{"run.bytes{stream=0}", "run.depth", "run.lat_ns|count", "run.lat_ns|p50", "run.lat_ns|p99"} {
		if !ids[want] {
			t.Errorf("dump missing series %s", want)
		}
	}
	if len(d.Incidents) != 1 || d.Incidents[0].Message != "lost ADU 7" {
		t.Errorf("dump incidents = %+v", d.Incidents)
	}
}

func TestCSVAndSparklineRender(t *testing.T) {
	s, reg := buildRun()
	rec := New(Config{Interval: 200 * time.Millisecond})
	rec.Bind(s, reg, sim.Time(time.Second))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := rec.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV has %d lines, want header+5 ticks:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "tick,time_s,run.bytes{stream=0},run.depth,") {
		t.Errorf("CSV header = %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,0.200000,200,2,") {
		t.Errorf("CSV first row = %s", lines[1])
	}

	var sp bytes.Buffer
	if err := rec.WriteSparklines(&sp, "run.depth", 40); err != nil {
		t.Fatal(err)
	}
	out := sp.String()
	if !strings.Contains(out, "run.depth") || !strings.Contains(out, "min=2 max=10 last=10") {
		t.Errorf("sparkline output:\n%s", out)
	}

	// Determinism: rendering twice gives identical bytes.
	var sp2 bytes.Buffer
	if err := rec.WriteSparklines(&sp2, "run.depth", 40); err != nil {
		t.Fatal(err)
	}
	if sp.String() != sp2.String() {
		t.Error("sparkline render not deterministic")
	}
}

func TestRecorderDeterminism(t *testing.T) {
	// Two identical runs must produce bit-identical dumps — the unit
	// half of the determinism contract (the sharded/worker-count half
	// lives in internal/experiments).
	run := func() []byte {
		s, reg := buildRun()
		rec := New(Config{
			Interval:  100 * time.Millisecond,
			Detectors: DefaultDetectors(1, 0, 0, 0),
		})
		rec.Bind(s, reg, sim.Time(time.Second))
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteDump(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different dumps")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Bind(sim.NewScheduler(), metrics.New(), sim.Time(time.Second))
	r.Sample()
	r.SampleAt(5)
	r.Note("d", "s", "m")
	if r.Ticks() != 0 || r.Interval() != 0 || r.LastTime() != 0 {
		t.Error("nil recorder reports non-zero state")
	}
	if r.Series("x") != nil || r.Match("all") != nil || r.Times() != nil || r.Incidents() != nil {
		t.Error("nil recorder returned non-nil collections")
	}
	var buf bytes.Buffer
	if err := r.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSparklines(&buf, "all", 40); err != nil {
		t.Fatal(err)
	}
	r.Each(func(*Series) { t.Error("nil recorder visited a series") })
	if (*Series)(nil).Len() != 0 || (*Series)(nil).Last() != 0 {
		t.Error("nil series reports samples")
	}
}

func TestSampleAtDeduplicates(t *testing.T) {
	reg := metrics.New()
	reg.Gauge("g").Set(1)
	rec := New(Config{})
	rec.Bind(nil, reg, 0)
	rec.SampleAt(sim.Time(100))
	rec.SampleAt(sim.Time(100)) // duplicate barrier: ignored
	rec.SampleAt(sim.Time(200))
	if rec.Ticks() != 2 {
		t.Errorf("ticks = %d, want 2 (duplicate dropped)", rec.Ticks())
	}
}
