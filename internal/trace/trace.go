// Package trace renders wire packets of every protocol in this
// repository as human-readable one-liners and provides hooks that
// annotate a simulation with a tcpdump-style event log. It exists for
// debugging and for the cmd/alftrace inspection tool.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/netsim"
	"repro/internal/session"
	"repro/internal/sim"
)

// Proto selects the dialect a byte string should be decoded as; OTP
// segments and ALF packets share low type values, so the caller says
// which protocol a channel carries.
type Proto int

// Protocols understood by Describe.
const (
	// ALF covers data fragments, control, heartbeats, and the session
	// handshake (their type bytes are disjoint).
	ALF Proto = iota
	// OTP is the ordered transport's segment format.
	OTP
)

// Describe renders one packet as a single line (no newline).
func Describe(p Proto, pkt []byte) string {
	switch p {
	case OTP:
		return describeOTP(pkt)
	default:
		return describeALF(pkt)
	}
}

func describeALF(pkt []byte) string {
	if t := session.MessageType(pkt); t != 0 {
		return describeSession(t, pkt)
	}
	if len(pkt) == 0 {
		return "alf: empty"
	}
	switch pkt[0] {
	case 1: // data fragment
		if len(pkt) < 34 {
			return fmt.Sprintf("alf data: short (%d bytes)", len(pkt))
		}
		name := binary.BigEndian.Uint64(pkt[2:10])
		tag := binary.BigEndian.Uint64(pkt[10:18])
		flags := pkt[19]
		total := binary.BigEndian.Uint32(pkt[20:24])
		off := binary.BigEndian.Uint32(pkt[24:28])
		flen := binary.BigEndian.Uint16(pkt[28:30])
		kind := "DATA"
		if flags&2 != 0 {
			kind = "PARITY"
		}
		enc := ""
		if flags&1 != 0 {
			enc = " enc"
		}
		return fmt.Sprintf("alf %s stream=%d adu=%d tag=%#x frag=[%d:%d) of %d%s",
			kind, pkt[1], name, tag, off, off+uint32(flen), total, enc)
	case 2: // control
		if len(pkt) < 14 {
			return fmt.Sprintf("alf ctrl: short (%d bytes)", len(pkt))
		}
		cum := binary.BigEndian.Uint64(pkt[2:10])
		n := int(binary.BigEndian.Uint16(pkt[10:12]))
		s := fmt.Sprintf("alf CTRL stream=%d cum=%d nacks=%d", pkt[1], cum, n)
		if n > 0 && len(pkt) >= 12+8*n {
			s += " ["
			for i := 0; i < n && i < 8; i++ {
				if i > 0 {
					s += " "
				}
				s += fmt.Sprintf("%d", binary.BigEndian.Uint64(pkt[12+8*i:]))
			}
			if n > 8 {
				s += " …"
			}
			s += "]"
		}
		return s
	case 3: // heartbeat
		if len(pkt) < 12 {
			return fmt.Sprintf("alf hb: short (%d bytes)", len(pkt))
		}
		return fmt.Sprintf("alf HB stream=%d next=%d", pkt[1], binary.BigEndian.Uint64(pkt[2:10]))
	case 4: // feedback report
		if len(pkt) < 24 {
			return fmt.Sprintf("alf fb: short (%d bytes)", len(pkt))
		}
		return fmt.Sprintf("alf FB stream=%d seq=%d wire=%d delivered=%d", pkt[1],
			binary.BigEndian.Uint32(pkt[2:6]),
			binary.BigEndian.Uint64(pkt[6:14]),
			binary.BigEndian.Uint64(pkt[14:22]))
	default:
		// Hex, zero-padded: unknown type bytes are usually protocol
		// collisions or corruption, and those read naturally in hex
		// ("unknown type 0x41" is printable 'A', not "65").
		return fmt.Sprintf("alf: unknown type 0x%02X (%d bytes)", pkt[0], len(pkt))
	}
}

func describeSession(t int, pkt []byte) string {
	switch t {
	case 10:
		if len(pkt) < 25 {
			return "session OFFER: short"
		}
		return fmt.Sprintf("session OFFER stream=%d syntaxes=%d mtu=%d policy=%d fec=%d",
			pkt[1], pkt[24],
			binary.BigEndian.Uint16(pkt[4:6]),
			pkt[3],
			binary.BigEndian.Uint16(pkt[6:8]))
	case 11:
		if len(pkt) < 3 {
			return "session ACCEPT: short"
		}
		return fmt.Sprintf("session ACCEPT stream=%d syntax=%d", pkt[1], pkt[2])
	case 12:
		if len(pkt) < 3 {
			return "session REJECT: short"
		}
		return fmt.Sprintf("session REJECT stream=%d reason=%d", pkt[1], pkt[2])
	}
	return "session: unknown"
}

func describeOTP(seg []byte) string {
	if len(seg) < 16 {
		return fmt.Sprintf("otp: short (%d bytes)", len(seg))
	}
	flags := seg[0]
	seq := binary.BigEndian.Uint32(seg[2:6])
	ack := binary.BigEndian.Uint32(seg[6:10])
	wnd := binary.BigEndian.Uint16(seg[10:12])
	plen := binary.BigEndian.Uint16(seg[14:16])
	kind := ""
	if flags&1 != 0 {
		kind += "DATA "
	}
	if flags&2 != 0 {
		kind += "ACK "
	}
	if kind == "" {
		kind = "? "
	}
	return fmt.Sprintf("otp %sconn=%d seq=%d ack=%d wnd=%d len=%d",
		kind, seg[1], seq, ack, wnd*16, plen)
}

// Logger annotates send functions and node handlers with timestamped
// trace lines on an io.Writer.
type Logger struct {
	W     io.Writer
	Sched *sim.Scheduler
	// Lines counts emitted entries; Limit (if >0) silences output after
	// that many lines so a trace cannot drown a long run.
	Lines int64
	Limit int64
}

// New creates a logger writing to w on sched's clock.
func New(w io.Writer, sched *sim.Scheduler) *Logger {
	return &Logger{W: w, Sched: sched}
}

func (l *Logger) log(dir, label string, p Proto, pkt []byte) {
	l.Lines++
	if l.Limit > 0 && l.Lines > l.Limit {
		if l.Lines == l.Limit+1 {
			fmt.Fprintf(l.W, "… trace truncated at %d lines\n", l.Limit)
		}
		return
	}
	fmt.Fprintf(l.W, "%12v %s %-10s %s\n", l.Sched.Now(), dir, label, Describe(p, pkt))
}

// WrapSend returns a send function that logs each packet ("->") before
// forwarding to next.
func (l *Logger) WrapSend(label string, p Proto, next func([]byte) error) func([]byte) error {
	return func(pkt []byte) error {
		l.log("->", label, p, pkt)
		return next(pkt)
	}
}

// WrapHandler returns a node handler that logs each arrival ("<-")
// before forwarding to next.
func (l *Logger) WrapHandler(label string, p Proto, next netsim.Handler) netsim.Handler {
	return func(pk *netsim.Packet) {
		dir := "<-"
		if pk.Corrupted {
			dir = "<!"
		}
		l.log(dir, label, p, pk.Payload)
		next(pk)
	}
}
