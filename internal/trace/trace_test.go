package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/otp"
	"repro/internal/sim"
	"repro/internal/xcode"
)

func TestDescribeALFData(t *testing.T) {
	s := sim.NewScheduler()
	var pkts [][]byte
	snd, err := alf.NewSender(s, func(p []byte) error {
		pkts = append(pkts, append([]byte(nil), p...))
		return nil
	}, alf.Config{MTU: 128 + alf.HeaderSize, FECGroup: 2, Key: 5, StreamID: 9})
	if err != nil {
		t.Fatal(err)
	}
	snd.Send(0xBEEF, xcode.SyntaxRaw, make([]byte, 300))

	var data, parity int
	for _, p := range pkts {
		line := Describe(ALF, p)
		switch {
		case strings.Contains(line, "PARITY"):
			parity++
		case strings.Contains(line, "DATA"):
			data++
			if !strings.Contains(line, "stream=9") || !strings.Contains(line, "tag=0xbeef") {
				t.Errorf("data line missing fields: %q", line)
			}
			if !strings.Contains(line, "enc") {
				t.Errorf("enciphered flag not shown: %q", line)
			}
		}
	}
	if data != 3 || parity == 0 {
		t.Errorf("described %d data, %d parity fragments", data, parity)
	}
}

func TestDescribeALFControlAndHB(t *testing.T) {
	// Generate a real control message via a receiver.
	s := sim.NewScheduler()
	var ctrl []byte
	rcv, _ := alf.NewReceiver(s, func(p []byte) error {
		ctrl = append([]byte(nil), p...)
		return nil
	}, alf.Config{NackInterval: time.Millisecond})
	snd, _ := alf.NewSender(s, func(p []byte) error {
		rcv.HandlePacket(p)
		return nil
	}, alf.Config{NackInterval: time.Millisecond})
	snd.Send(0, xcode.SyntaxRaw, []byte{1, 2, 3})
	s.RunUntil(sim.Time(10 * time.Millisecond))

	if ctrl == nil {
		t.Fatal("no control message captured")
	}
	line := Describe(ALF, ctrl)
	if !strings.Contains(line, "CTRL") || !strings.Contains(line, "cum=1") {
		t.Errorf("control line: %q", line)
	}
}

func TestDescribeOTP(t *testing.T) {
	s := sim.NewScheduler()
	var seg []byte
	conn := otp.New(s, func(p []byte) error {
		if seg == nil {
			seg = append([]byte(nil), p...)
		}
		return nil
	}, otp.Config{ConnID: 4})
	conn.Send(make([]byte, 100))
	line := Describe(OTP, seg)
	if !strings.Contains(line, "DATA") || !strings.Contains(line, "conn=4") ||
		!strings.Contains(line, "len=100") {
		t.Errorf("otp line: %q", line)
	}
}

func TestDescribeNeverPanics(t *testing.T) {
	f := func(pkt []byte) bool {
		Describe(ALF, pkt)
		Describe(OTP, pkt)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDescribeUnknownType pins the rendering of type bytes no ALF
// packet uses: an explicit hex line, never a misparse of another
// format and never a panic.
func TestDescribeUnknownType(t *testing.T) {
	cases := []struct {
		pkt  []byte
		want string
	}{
		{[]byte{0x00}, "alf: unknown type 0x00 (1 bytes)"},
		{[]byte{0x41, 1, 2, 3}, "alf: unknown type 0x41 (4 bytes)"},
		{[]byte{0xFF, 0xFF}, "alf: unknown type 0xFF (2 bytes)"},
	}
	for _, c := range cases {
		if got := Describe(ALF, c.pkt); got != c.want {
			t.Errorf("Describe(%v) = %q, want %q", c.pkt, got, c.want)
		}
	}
}

// FuzzDescribe drives both decoders with arbitrary bytes. Seeds cover
// every known type byte plus unknown ones, so the corpus exercises the
// real parse paths, not just the early-exit guards.
func FuzzDescribe(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 9, 0, 0, 0, 0, 0, 0, 0, 7})             // ALF data, truncated
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0}) // ALF ctrl shape
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0})       // ALF hb shape
	f.Add([]byte{0x41, 0x41, 0x41, 0x41})                   // unknown type
	f.Add([]byte{0xFF})                                     // unknown type, minimal
	f.Add(make([]byte, 64))                                 // zeros
	f.Fuzz(func(t *testing.T, pkt []byte) {
		for _, proto := range []Proto{ALF, OTP} {
			if line := Describe(proto, pkt); line == "" {
				t.Errorf("Describe(%d, %x) returned empty", proto, pkt)
			}
		}
	})
}

func TestLoggerEndToEnd(t *testing.T) {
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond})

	var buf bytes.Buffer
	lg := New(&buf, s)
	snd, _ := alf.NewSender(s, lg.WrapSend("snd", ALF, ab.Send), alf.Config{})
	rcv, _ := alf.NewReceiver(s, lg.WrapSend("rcv", ALF, ba.Send), alf.Config{})
	a.SetHandler(lg.WrapHandler("snd", ALF, func(p *netsim.Packet) { snd.HandleControl(p.Payload) }))
	b.SetHandler(lg.WrapHandler("rcv", ALF, func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) }))

	snd.Send(0, xcode.SyntaxRaw, make([]byte, 100))
	s.Run()

	out := buf.String()
	if !strings.Contains(out, "-> snd") || !strings.Contains(out, "<- rcv") {
		t.Errorf("directions missing:\n%s", out)
	}
	if !strings.Contains(out, "DATA") || !strings.Contains(out, "CTRL") {
		t.Errorf("protocol lines missing:\n%s", out)
	}
	if lg.Lines == 0 {
		t.Error("no lines counted")
	}
}

func TestLoggerLimit(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, sim.NewScheduler())
	lg.Limit = 2
	send := lg.WrapSend("x", ALF, func([]byte) error { return nil })
	for i := 0; i < 5; i++ {
		send([]byte{1})
	}
	out := buf.String()
	if strings.Count(out, "\n") != 3 { // 2 lines + truncation notice
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "truncated") {
		t.Error("no truncation notice")
	}
}
