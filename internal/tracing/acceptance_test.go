// Acceptance test for the tracing plane: run the real ALF stack and
// the real OTP baseline over one simulated network, kill exactly one
// transmission window with a fault, and check that the reconstructed
// timelines show the paper's §5 claim — the ordered transport charges
// head-of-line stall to ADUs that arrived intact, ALF charges none.
package tracing_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	alf "repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/otp"
	"repro/internal/sim"
	"repro/internal/tracing"
	"repro/internal/xcode"
)

// rig is the two-protocol test topology: each protocol gets its own
// clean duplex path so a fault can be aimed at both forward directions
// while the reverse (ACK/NACK) paths stay alive.
type rig struct {
	sched  *sim.Scheduler
	tracer *tracing.Tracer
	inj    *faults.Injector

	alfSnd *alf.Sender
	alfRcv *alf.Receiver
	oSnd   *otp.Conn
	oRcv   *otp.Conn

	alfFwd, otpFwd *netsim.Link

	deliverOrder []uint64 // ALF delivery order by name
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{sched: sim.NewScheduler()}
	r.tracer = tracing.New(r.sched)

	net := netsim.New(r.sched, 1)
	net.SetTracer(r.tracer)
	aS := net.NewNode("alf-src")
	aD := net.NewNode("alf-dst")
	oS := net.NewNode("otp-src")
	oD := net.NewNode("otp-dst")
	lc := netsim.LinkConfig{RateBps: 100e6, Delay: time.Millisecond}
	var aBack, oBack *netsim.Link
	r.alfFwd, aBack = net.NewDuplex(aS, aD, lc)
	r.otpFwd, oBack = net.NewDuplex(oS, oD, lc)

	aCfg := alf.Config{
		NackDelay:    10 * time.Millisecond,
		NackInterval: 20 * time.Millisecond,
		Tracer:       r.tracer,
	}
	var err error
	r.alfSnd, err = alf.NewSender(r.sched, func(p []byte) error {
		return netsim.SendVia(r.alfFwd, aD, p)
	}, aCfg)
	if err != nil {
		t.Fatal(err)
	}
	r.alfRcv, err = alf.NewReceiver(r.sched, func(p []byte) error {
		return netsim.SendVia(aBack, aS, p)
	}, aCfg)
	if err != nil {
		t.Fatal(err)
	}
	aS.SetHandler(func(p *netsim.Packet) { r.alfSnd.HandleControl(p.Payload) })
	aD.SetHandler(func(p *netsim.Packet) { r.alfRcv.HandlePacket(p.Payload) })
	r.alfRcv.OnADU = func(adu alf.ADU) { r.deliverOrder = append(r.deliverOrder, adu.Name) }

	oCfg := otp.Config{
		MSS:        1000,
		InitialRTO: 100 * time.Millisecond,
		MinRTO:     50 * time.Millisecond,
		Tracer:     r.tracer,
	}
	r.oSnd = otp.New(r.sched, func(p []byte) error {
		return netsim.SendVia(r.otpFwd, oD, p)
	}, oCfg)
	r.oRcv = otp.New(r.sched, func(p []byte) error {
		return netsim.SendVia(oBack, oS, p)
	}, oCfg)
	oS.SetHandler(func(p *netsim.Packet) { r.oSnd.HandleSegment(p.Payload) })
	oD.SetHandler(func(p *netsim.Packet) { r.oRcv.HandleSegment(p.Payload) })

	r.inj = faults.New(r.sched, 1)
	r.inj.SetTracer(r.tracer)
	return r
}

// runLossScenario submits 5 ADUs to ALF and 5 messages to OTP, 1000 B
// each, one every 10 ms, and blacks out both forward links over a
// window that swallows exactly unit #2's transmission.
func runLossScenario(t *testing.T) (*rig, *tracing.Report) {
	t.Helper()
	r := newRig(t)
	for i := 0; i < 5; i++ {
		name := uint64(i)
		payload := bytes.Repeat([]byte{byte(i + 1)}, 1000)
		r.sched.After(sim.Duration(i)*10*time.Millisecond, func() {
			if _, err := r.alfSnd.Send(name, xcode.SyntaxRaw, payload); err != nil {
				t.Errorf("alf Send(%d): %v", name, err)
			}
			if err := r.oSnd.Send(payload); err != nil {
				t.Errorf("otp Send(%d): %v", name, err)
			}
		})
	}
	// Down from 19.5 ms to 25 ms: unit 2 (t=20 ms) dies on the wire,
	// the links are healed well before unit 3 (t=30 ms).
	r.inj.Blackout([]*netsim.Link{r.alfFwd, r.otpFwd},
		19500*time.Microsecond, 5500*time.Microsecond)
	if err := r.sched.RunUntil(sim.Time(0).Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	return r, r.tracer.Analyze()
}

// TestLossStallsOTPNotALF reconstructs the injected loss from the
// trace alone and asserts the architectural contrast: under OTP every
// message after the loss shows head-of-line stall; under ALF none
// does, and delivery demonstrably ran ahead of the recovery.
func TestLossStallsOTPNotALF(t *testing.T) {
	r, rep := runLossScenario(t)

	// The blackout must appear as a fault span with down-drops linked
	// to it (one ALF fragment + one OTP segment died).
	if len(rep.Faults) != 1 || rep.Faults[0].Kind != "blackout" {
		t.Fatalf("faults = %+v, want one blackout", rep.Faults)
	}
	if rep.Drops["down"] < 2 {
		t.Fatalf("down drops = %d, want >= 2 (one per protocol)", rep.Drops["down"])
	}

	// ALF side: all five delivered; #2 recovered via NACK; later ADUs
	// show zero HOL stall and were delivered before #2 settled.
	for i := uint64(0); i < 5; i++ {
		a := rep.ADU(0, i)
		if a == nil || a.Outcome != "delivered" {
			t.Fatalf("ADU %d = %+v, want delivered", i, a)
		}
		if a.Attr.HOLStall != 0 {
			t.Errorf("ADU %d HOLStall = %v, want 0 (ALF never stalls)", i, a.Attr.HOLStall)
		}
	}
	lost := rep.ADU(0, 2)
	if lost.Drops == 0 || lost.Nacks == 0 || lost.Retx == 0 {
		t.Errorf("ADU 2 drops/nacks/retx = %d/%d/%d, want all > 0",
			lost.Drops, lost.Nacks, lost.Retx)
	}
	if lost.Attr.RetransmitWait <= 0 {
		t.Errorf("ADU 2 RetransmitWait = %v, want > 0", lost.Attr.RetransmitWait)
	}
	for _, i := range []uint64{3, 4} {
		if a := rep.ADU(0, i); a.Settled >= lost.Settled {
			t.Errorf("ADU %d settled %v, after lost ADU 2's %v — not out-of-order delivery",
				i, a.Settled, lost.Settled)
		}
	}
	// Delivery order as the application saw it: 3 and 4 before 2.
	want := []uint64{0, 1, 3, 4, 2}
	if len(r.deliverOrder) != len(want) {
		t.Fatalf("delivered %v", r.deliverOrder)
	}
	for i, n := range want {
		if r.deliverOrder[i] != n {
			t.Fatalf("delivery order %v, want %v", r.deliverOrder, want)
		}
	}

	// OTP side: messages 3 and 4 arrived intact during the outage of
	// message 2's bytes and paid the in-order delivery cost.
	m2 := rep.Msg(0, 2)
	if m2 == nil || m2.Outcome != "delivered" {
		t.Fatalf("msg 2 = %+v, want delivered", m2)
	}
	if m2.Retx == 0 || m2.Drops == 0 {
		t.Errorf("msg 2 retx/drops = %d/%d, want both > 0", m2.Retx, m2.Drops)
	}
	if m2.Attr.RetransmitWait <= 0 {
		t.Errorf("msg 2 RetransmitWait = %v, want > 0", m2.Attr.RetransmitWait)
	}
	for _, i := range []uint64{3, 4} {
		m := rep.Msg(0, i)
		if m == nil || m.Outcome != "delivered" {
			t.Fatalf("msg %d = %+v, want delivered", i, m)
		}
		if m.Attr.HOLStall <= 0 {
			t.Errorf("msg %d HOLStall = %v, want > 0 (blocked behind msg 2)", i, m.Attr.HOLStall)
		}
		if m.Ready >= m.Delivered {
			t.Errorf("msg %d ready %v !< delivered %v", i, m.Ready, m.Delivered)
		}
	}

	// Causal chain: the stall the loss opened carries the fault's flow
	// (fault window → down-drop → HOL stall).
	if len(rep.Stalls) == 0 {
		t.Fatal("no stall spans reconstructed")
	}
	st := rep.Stalls[0]
	if st.Flow != rep.Faults[0].Flow {
		t.Errorf("stall flow %d, want fault flow %d", st.Flow, rep.Faults[0].Flow)
	}
	if st.End == tracing.Unset || st.End.Sub(st.Begin) <= 0 {
		t.Errorf("stall span [%v, %v] not closed", st.Begin, st.End)
	}
}

// TestPerfettoExport validates the Chrome trace-event JSON produced
// from a real run: parseable, displayTimeUnit set, async spans
// balanced, every event on a named process/thread.
func TestPerfettoExport(t *testing.T) {
	r, _ := runLossScenario(t)

	var buf bytes.Buffer
	if err := r.tracer.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   float64         `json:"ts"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			ID   string          `json:"id"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	valid := map[string]bool{"M": true, "b": true, "e": true, "X": true,
		"i": true, "s": true, "t": true, "f": true}
	open := make(map[string]int) // async span balance by id
	var threads, flows int
	for _, e := range f.TraceEvents {
		if !valid[e.Ph] {
			t.Fatalf("event %q has unknown phase %q", e.Name, e.Ph)
		}
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threads++
			}
		case "b":
			open[e.ID]++
		case "e":
			open[e.ID]--
		case "s", "t", "f":
			flows++
		}
		if e.Ph != "M" && e.Ts < 0 {
			t.Fatalf("event %q at negative ts %v", e.Name, e.Ts)
		}
	}
	for id, n := range open {
		if n != 0 {
			t.Errorf("async span %q unbalanced (%+d)", id, n)
		}
	}
	if threads < 4 {
		t.Errorf("only %d named threads, want alf/otp/net/faults tracks", threads)
	}
	if flows < 2 {
		t.Errorf("only %d flow-arrow events, want a causal chain", flows)
	}

	// Export must be deterministic: a second encoding is byte-identical.
	var buf2 bytes.Buffer
	if err := r.tracer.WritePerfetto(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WritePerfetto is not deterministic")
	}
}

// TestReportWriters smoke-tests the terminal renderings on a real run:
// they must mention the reconstructed facts and never panic.
func TestReportWriters(t *testing.T) {
	r, rep := runLossScenario(t)
	_ = r

	var sum, attr, one bytes.Buffer
	rep.WriteSummary(&sum)
	rep.WriteAttrTable(&attr)
	rep.WriteADU(&one, 0, 2)
	for _, probe := range []struct {
		buf  *bytes.Buffer
		want string
	}{
		{&sum, "blackout"},
		{&attr, "s0/2"},
		{&one, "frag-retx"},
	} {
		if !bytes.Contains(probe.buf.Bytes(), []byte(probe.want)) {
			t.Errorf("output missing %q:\n%s", probe.want, probe.buf.String())
		}
	}
}
