package tracing

import (
	"sort"

	"repro/internal/sim"
)

// Unset marks a timestamp that never happened (e.g. FirstRX of an ADU
// whose every fragment was lost).
const Unset = sim.Time(-1)

// Attribution breaks one ADU's (or message's) end-to-end latency into
// named phases.
//
// The wall-clock phases SenderPace + NetTransit + RetransmitWait +
// Reassembly + HOLStall sum to Total for a delivered unit: SenderPace
// is submit → first transmission (pacing and window wait), NetTransit
// first transmission → first arrival (under OTP, measured from the
// last copy sent before that arrival, so a lost first copy does not
// inflate it), RetransmitWait the merged intervals spent waiting for
// recovery (NACK → answering arrival under ALF; under OTP first
// transmission → that last copy, plus first arrival → all bytes
// arrived), Reassembly the
// remaining receive-side time, and HOLStall — OTP only, structurally
// zero under ALF — the time all bytes sat fully arrived but
// undeliverable behind an ordering gap (delivered − ready; the
// per-unit form of the otp.hol_stall_ns aggregate, the paper's §5
// in-order delivery cost).
//
// Queueing, Serialization, and Propagation are per-packet state sums
// over every hop and copy (retransmissions included), so they overlap
// each other and the wall-clock phases and can legitimately exceed
// Total when fragments traverse the network in parallel.
type Attribution struct {
	SenderPace     sim.Duration
	NetTransit     sim.Duration
	RetransmitWait sim.Duration
	Reassembly     sim.Duration
	HOLStall       sim.Duration

	Queueing      sim.Duration
	Serialization sim.Duration
	Propagation   sim.Duration

	Total sim.Duration
}

// ADUTrace is the reconstructed lifecycle of one ALF ADU.
type ADUTrace struct {
	Stream byte
	Name   uint64
	Tag    uint64
	Size   int

	Submitted sim.Time
	FirstTX   sim.Time
	FirstRX   sim.Time
	Settled   sim.Time // time of the outcome event (Unset while pending)

	// Outcome is "delivered", "lost" (receiver gave up), "expired"
	// (sender shed retention), or "pending".
	Outcome string

	Frags         int // data fragment transmissions, first copies
	Retx          int // data fragment retransmissions
	Parity        int // FEC parity fragments sent
	Nacks         int // recovery requests the receiver issued
	Drops         int // sniffed network drops of this ADU's fragments
	ChecksumFails int

	Events []Event // this ADU's events, in recorded order
	Attr   Attribution
}

// MsgTrace is the reconstructed lifecycle of one OTP message (one
// Conn.Send call), the ordered-transport counterpart of an ADU.
type MsgTrace struct {
	Conn  byte
	Index uint64
	Off   int64 // stream offset of the first byte
	End   int64 // offset past the last byte

	Submitted sim.Time
	FirstTX   sim.Time
	FirstRX   sim.Time // earliest arrival of any of its bytes
	Ready     sim.Time // all bytes arrived at the receiver
	Delivered sim.Time // in-order delivery reached End

	Outcome string // "delivered" or "pending"

	Retx  int // retransmissions overlapping this message
	Drops int // sniffed network drops overlapping this message

	Attr Attribution
}

// FaultSpan is one fault-injection window.
type FaultSpan struct {
	Kind  string
	Flow  uint64
	Begin sim.Time
	End   sim.Time // Unset if still open at trace end
}

// StallSpan is one OTP head-of-line stall interval.
type StallSpan struct {
	Conn  byte
	Begin sim.Time
	End   sim.Time // Unset if still open at trace end
	Flow  uint64   // causal link to the drop that opened it, if sniffed
}

// Report is the analysis of one recorded trace.
type Report struct {
	ADUs   []*ADUTrace // sorted by (stream, name)
	Msgs   []*MsgTrace // sorted by (conn, index)
	Faults []FaultSpan
	Stalls []StallSpan

	// Drops tallies sniffed network drops by cause.
	Drops map[string]int

	// End is the timestamp of the last recorded event.
	End sim.Time
}

// ADU finds the trace of one ADU, or nil.
func (r *Report) ADU(stream byte, name uint64) *ADUTrace {
	for _, a := range r.ADUs {
		if a.Stream == stream && a.Name == name {
			return a
		}
	}
	return nil
}

// Msg finds the trace of one OTP message, or nil.
func (r *Report) Msg(conn byte, index uint64) *MsgTrace {
	for _, m := range r.Msgs {
		if m.Conn == conn && m.Index == index {
			return m
		}
	}
	return nil
}

type aduKey struct {
	stream byte
	name   uint64
}

// span is a half-open time or byte interval used during reconstruction.
type span struct {
	from, to int64
}

// mergeSpans coalesces overlapping intervals and returns the summed
// length of the union.
func mergeSpans(spans []span) int64 {
	if len(spans) == 0 {
		return 0
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].from < spans[j].from })
	var total int64
	cur := spans[0]
	for _, s := range spans[1:] {
		if s.from <= cur.to {
			if s.to > cur.to {
				cur.to = s.to
			}
			continue
		}
		total += cur.to - cur.from
		cur = s
	}
	return total + cur.to - cur.from
}

// arrival is one receiver-side byte-range arrival.
type arrival struct {
	at       sim.Time
	off, end int64
}

// coverageTime returns the earliest time at which arrivals (in time
// order) fully cover [off, end), or Unset if they never do. Also
// returns the earliest arrival overlapping the range.
func coverageTime(arrivals []arrival, off, end int64) (ready, first sim.Time) {
	ready, first = Unset, Unset
	var covered []span
	var have int64
	want := end - off
	for _, a := range arrivals {
		lo, hi := a.off, a.end
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if lo >= hi {
			continue
		}
		if first == Unset {
			first = a.at
		}
		covered = append(covered, span{lo, hi})
		if have = mergeSpans(append([]span(nil), covered...)); have >= want {
			return a.at, first
		}
	}
	return Unset, first
}

// Analyze reconstructs per-ADU and per-message lifecycles, causal
// spans, and latency attribution from the recorded events. A nil
// tracer yields an empty report.
func (t *Tracer) Analyze() *Report {
	r := &Report{Drops: make(map[string]int)}
	if t == nil || len(t.events) == 0 {
		return r
	}
	events := t.events
	r.End = events[len(events)-1].At

	adus := make(map[aduKey]*ADUTrace)
	getADU := func(stream byte, name uint64) *ADUTrace {
		k := aduKey{stream, name}
		a := adus[k]
		if a == nil {
			a = &ADUTrace{Stream: stream, Name: name, Outcome: "pending",
				Submitted: Unset, FirstTX: Unset, FirstRX: Unset, Settled: Unset}
			adus[k] = a
		}
		return a
	}

	type connState struct {
		msgs     []*MsgTrace
		arrivals []arrival
		delivers []Event // SegDeliver events in order
		txs      []Event // SegTX / SegRetx
		drops    []Event // sniffed otp-data drops
		stall    int     // index into r.Stalls of the open stall, -1 if none
	}
	conns := make(map[byte]*connState)
	getConn := func(id byte) *connState {
		c := conns[id]
		if c == nil {
			c = &connState{stall: -1}
			conns[id] = c
		}
		return c
	}

	// nackWait accumulates, per ADU, the open recovery intervals:
	// a NackTX opens one; the arrival carrying its flow closes it.
	type openNack struct {
		at   sim.Time
		flow uint64
	}
	nackOpen := make(map[aduKey][]openNack)
	nackSpans := make(map[aduKey][]span)

	openFaults := make(map[uint64]int) // flow -> index into r.Faults

	for _, e := range events {
		switch e.Kind {
		case ADUSubmit:
			a := getADU(e.ID, e.ADU)
			a.Submitted = e.At
			a.Size = e.Len
			a.Tag = e.Tag
			a.Events = append(a.Events, e)
		case FragTX, FragRetx, ParityTX:
			a := getADU(e.ID, e.ADU)
			if a.FirstTX == Unset {
				a.FirstTX = e.At
			}
			switch e.Kind {
			case FragTX:
				a.Frags++
			case FragRetx:
				a.Retx++
			case ParityTX:
				a.Parity++
			}
			a.Events = append(a.Events, e)
		case FragRX, ParityRX:
			a := getADU(e.ID, e.ADU)
			if a.FirstRX == Unset {
				a.FirstRX = e.At
			}
			if e.Flow != 0 {
				k := aduKey{e.ID, e.ADU}
				open := nackOpen[k]
				for i, o := range open {
					if o.flow == e.Flow {
						nackSpans[k] = append(nackSpans[k], span{int64(o.at), int64(e.At)})
						nackOpen[k] = append(open[:i], open[i+1:]...)
						break
					}
				}
			}
			a.Events = append(a.Events, e)
		case NackTX:
			a := getADU(e.ID, e.ADU)
			a.Nacks++
			k := aduKey{e.ID, e.ADU}
			nackOpen[k] = append(nackOpen[k], openNack{e.At, e.Flow})
			a.Events = append(a.Events, e)
		case ChecksumFail:
			a := getADU(e.ID, e.ADU)
			a.ChecksumFails++
			a.Events = append(a.Events, e)
		case ADUDeliver:
			a := getADU(e.ID, e.ADU)
			a.Outcome = "delivered"
			a.Settled = e.At
			a.Events = append(a.Events, e)
		case ADULoss:
			a := getADU(e.ID, e.ADU)
			if a.Outcome == "pending" {
				a.Outcome = "lost"
				a.Settled = e.At
			}
			a.Events = append(a.Events, e)
		case ADUExpire:
			a := getADU(e.ID, e.ADU)
			if a.Outcome == "pending" {
				a.Outcome = "expired"
				a.Settled = e.At
			}
			a.Events = append(a.Events, e)

		case MsgSubmit:
			c := getConn(e.ID)
			c.msgs = append(c.msgs, &MsgTrace{
				Conn: e.ID, Index: e.ADU, Off: e.Off, End: e.Off + int64(e.Len),
				Submitted: e.At, FirstTX: Unset, FirstRX: Unset,
				Ready: Unset, Delivered: Unset, Outcome: "pending",
			})
		case SegTX, SegRetx:
			c := getConn(e.ID)
			c.txs = append(c.txs, e)
		case SegOOO:
			c := getConn(e.ID)
			c.arrivals = append(c.arrivals, arrival{e.At, e.Off, e.Off + int64(e.Len)})
		case SegDeliver:
			c := getConn(e.ID)
			c.arrivals = append(c.arrivals, arrival{e.At, e.Off, e.Off + int64(e.Len)})
			c.delivers = append(c.delivers, e)
		case StallOpen:
			c := getConn(e.ID)
			r.Stalls = append(r.Stalls, StallSpan{Conn: e.ID, Begin: e.At, End: Unset, Flow: e.Flow})
			c.stall = len(r.Stalls) - 1
		case StallClose:
			c := getConn(e.ID)
			if c.stall >= 0 {
				r.Stalls[c.stall].End = e.At
				c.stall = -1
			}

		case NetQueue:
			switch e.Proto {
			case ProtoALFData:
				a := getADU(e.ID, e.ADU)
				a.Attr.Queueing += e.Dur
				a.Attr.Serialization += e.Dur2
				a.Events = append(a.Events, e)
			case ProtoOTPData:
				for _, m := range getConn(e.ID).msgs {
					if e.Off < m.End && e.Off+int64(e.Len) > m.Off {
						m.Attr.Queueing += e.Dur
						m.Attr.Serialization += e.Dur2
					}
				}
			}
		case NetDeliver:
			switch e.Proto {
			case ProtoALFData:
				a := getADU(e.ID, e.ADU)
				a.Attr.Propagation += e.Dur
				a.Events = append(a.Events, e)
			case ProtoOTPData:
				for _, m := range getConn(e.ID).msgs {
					if e.Off < m.End && e.Off+int64(e.Len) > m.Off {
						m.Attr.Propagation += e.Dur
					}
				}
			}
		case NetDrop:
			r.Drops[e.Cause]++
			switch e.Proto {
			case ProtoALFData:
				a := getADU(e.ID, e.ADU)
				a.Drops++
				a.Events = append(a.Events, e)
			case ProtoOTPData:
				getConn(e.ID).drops = append(getConn(e.ID).drops, e)
			}

		case FaultBegin:
			openFaults[e.Flow] = len(r.Faults)
			r.Faults = append(r.Faults, FaultSpan{Kind: e.Cause, Flow: e.Flow, Begin: e.At, End: Unset})
		case FaultEnd:
			if i, ok := openFaults[e.Flow]; ok {
				r.Faults[i].End = e.At
				delete(openFaults, e.Flow)
			}
		}
	}

	// ALF attribution.
	for k, a := range adus {
		// Recovery intervals still open at settle (or trace end) close there.
		closeAt := a.Settled
		if closeAt == Unset {
			closeAt = r.End
		}
		spans := nackSpans[k]
		for _, o := range nackOpen[k] {
			if int64(closeAt) > int64(o.at) {
				spans = append(spans, span{int64(o.at), int64(closeAt)})
			}
		}
		a.Attr.RetransmitWait = sim.Duration(mergeSpans(spans))
		if a.Submitted != Unset && a.FirstTX != Unset {
			a.Attr.SenderPace = a.FirstTX.Sub(a.Submitted)
		}
		if a.FirstTX != Unset && a.FirstRX != Unset {
			a.Attr.NetTransit = a.FirstRX.Sub(a.FirstTX)
		}
		if a.Outcome == "delivered" && a.FirstRX != Unset {
			a.Attr.Reassembly = a.Settled.Sub(a.FirstRX) - a.Attr.RetransmitWait
			if a.Attr.Reassembly < 0 {
				a.Attr.Reassembly = 0
			}
		}
		if a.Submitted != Unset && a.Settled != Unset {
			a.Attr.Total = a.Settled.Sub(a.Submitted)
		}
		r.ADUs = append(r.ADUs, a)
	}
	sort.Slice(r.ADUs, func(i, j int) bool {
		if r.ADUs[i].Stream != r.ADUs[j].Stream {
			return r.ADUs[i].Stream < r.ADUs[j].Stream
		}
		return r.ADUs[i].Name < r.ADUs[j].Name
	})

	// OTP attribution.
	var connIDs []int
	for id := range conns {
		connIDs = append(connIDs, int(id))
	}
	sort.Ints(connIDs)
	for _, id := range connIDs {
		c := conns[byte(id)]
		for _, m := range c.msgs {
			lastTX := Unset // latest transmission not after first arrival
			for _, e := range c.txs {
				if e.Off < m.End && e.Off+int64(e.Len) > m.Off {
					if m.FirstTX == Unset {
						m.FirstTX = e.At
					}
					if e.Kind == SegRetx {
						m.Retx++
					}
				}
			}
			for _, e := range c.drops {
				if e.Off < m.End && e.Off+int64(e.Len) > m.Off {
					m.Drops++
				}
			}
			m.Ready, m.FirstRX = coverageTime(c.arrivals, m.Off, m.End)
			for _, e := range c.delivers {
				if e.Off+int64(e.Len) >= m.End {
					m.Delivered = e.At
					m.Outcome = "delivered"
					break
				}
			}
			// A lost-then-recovered segment's wait lives between its
			// first (lost) transmission and the last transmission that
			// preceded the first arrival; transit proper is only that
			// last copy's flight time. Without retransmissions
			// lastTX == FirstTX and the terms reduce to the plain split.
			if m.FirstRX != Unset {
				for _, e := range c.txs {
					if e.Off < m.End && e.Off+int64(e.Len) > m.Off && e.At <= m.FirstRX {
						lastTX = e.At
					}
				}
			}
			if m.FirstTX != Unset {
				m.Attr.SenderPace = m.FirstTX.Sub(m.Submitted)
			}
			if m.FirstTX != Unset && m.FirstRX != Unset {
				if lastTX == Unset {
					lastTX = m.FirstTX
				}
				m.Attr.NetTransit = m.FirstRX.Sub(lastTX)
				m.Attr.RetransmitWait = lastTX.Sub(m.FirstTX)
			}
			if m.FirstRX != Unset && m.Ready != Unset {
				m.Attr.RetransmitWait += m.Ready.Sub(m.FirstRX)
			}
			if m.Ready != Unset && m.Delivered != Unset {
				m.Attr.HOLStall = m.Delivered.Sub(m.Ready)
			}
			if m.Delivered != Unset {
				m.Attr.Total = m.Delivered.Sub(m.Submitted)
			}
			r.Msgs = append(r.Msgs, m)
		}
	}
	sort.Slice(r.Msgs, func(i, j int) bool {
		if r.Msgs[i].Conn != r.Msgs[j].Conn {
			return r.Msgs[i].Conn < r.Msgs[j].Conn
		}
		return r.Msgs[i].Index < r.Msgs[j].Index
	})
	return r
}
