package tracing_test

import (
	"testing"

	alf "repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tracing"
	"repro/internal/xcode"
)

// The disabled-tracer contract: a nil *Tracer costs one predicted
// branch per recording call. BenchmarkDisabledTracer measures the
// per-call price directly; BenchmarkSenderSend measures the sender
// hot path it rides on, traced and untraced.

func BenchmarkDisabledTracer(b *testing.B) {
	var tr *tracing.Tracer
	b.Run("FragmentSent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.FragmentSent(0, uint64(i), 0, 1000, false, false, 0)
		}
	})
	b.Run("PacketQueued", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.PacketQueued("l", nil, 0, 0)
		}
	})
	b.Run("SegmentSent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.SegmentSent(0, int64(i), 1000, false)
		}
	})
}

func BenchmarkEnabledTracer(b *testing.B) {
	s := sim.NewScheduler()
	tr := tracing.New(s)
	tr.SetLimit(1 << 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.FragmentSent(0, uint64(i), 0, 1000, false, false, 0)
	}
}

// benchSender builds an ALF sender whose wire sink is a no-op.
func benchSender(b *testing.B, tr *tracing.Tracer) *alf.Sender {
	b.Helper()
	s := sim.NewScheduler()
	snd, err := alf.NewSender(s, func([]byte) error { return nil }, alf.Config{
		// NoRetransmit: nothing retained, so the loop never fills the
		// retention buffer and measures framing + emission alone.
		Policy:         alf.NoRetransmit,
		HeartbeatLimit: 1, Tracer: tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	return snd
}

// BenchmarkSenderSend is the sender hot path the nil-tracer branch
// must not tax: compare the "untraced" and "traced" variants.
func BenchmarkSenderSend(b *testing.B) {
	payload := make([]byte, 1000)
	b.Run("untraced", func(b *testing.B) {
		snd := benchSender(b, nil)
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		s := sim.NewScheduler()
		tr := tracing.New(s)
		tr.SetLimit(1) // steady state: recording branch taken, buffer full
		snd, err := alf.NewSender(s, func([]byte) error { return nil }, alf.Config{
			Policy:         alf.NoRetransmit,
			HeartbeatLimit: 1, Tracer: tr,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestDisabledTracerOverhead guards the ≤2 ns/op budget for the
// disabled tracer on the sender hot path. Each benchmark op makes 128
// recording calls so scheduler-clock noise amortizes away; the bound
// is asserted on the per-call quotient.
func TestDisabledTracerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	var tr *tracing.Tracer
	const calls = 128
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < calls; j++ {
				tr.FragmentSent(0, uint64(j), 0, 1000, false, false, 0)
			}
		}
	})
	perCall := float64(r.NsPerOp()) / calls
	// The budget is ≤2 ns per call; allow measurement slack on a busy
	// host but fail loudly if the nil path ever grows real work.
	if perCall > 2.0 {
		t.Errorf("disabled tracer costs %.2f ns/call, budget 2 ns", perCall)
	}
	if r.AllocsPerOp() != 0 {
		t.Errorf("disabled tracer allocates (%d allocs/op)", r.AllocsPerOp())
	}
	t.Logf("disabled tracer: %.3f ns/call", perCall)
}

// TestSenderTracerOverhead compares the full sender Send path with a
// nil tracer against one with a saturated tracer (recording branch
// taken, buffer full): the marginal cost per Send must stay within a
// few nanoseconds times the handful of hook sites on the path.
func TestSenderTracerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	payload := make([]byte, 1000)
	run := func(tr func() *tracing.Tracer) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			snd := benchSender(b, tr())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	off := run(func() *tracing.Tracer { return nil })
	on := run(func() *tracing.Tracer {
		s := sim.NewScheduler()
		tr := tracing.New(s)
		tr.SetLimit(1)
		return tr
	})
	delta := on.NsPerOp() - off.NsPerOp()
	t.Logf("sender Send: untraced %d ns/op, saturated tracer %d ns/op (delta %d)", off.NsPerOp(), on.NsPerOp(), delta)
	// Send records ~2 events (submit + fragment); a saturated tracer's
	// marginal cost must stay in the tens of nanoseconds, far under a
	// microsecond-scale Send. Generous bound: flag only regressions.
	if delta > 200 {
		t.Errorf("tracer adds %d ns to Send (untraced %d), want ≤200", delta, off.NsPerOp())
	}
}
