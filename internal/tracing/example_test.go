package tracing_test

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/tracing"
)

// Example records one ADU's lifecycle by hand and reconstructs its
// latency attribution. In real use the recording calls are made by the
// protocol layers — set alf.Config.Tracer / otp.Config.Tracer /
// netsim.Network.SetTracer to the same *Tracer and every event below
// happens automatically.
func Example() {
	s := sim.NewScheduler()
	tr := tracing.New(s)

	at := func(d sim.Duration, fn func()) { s.At(sim.Time(0).Add(d), fn) }
	at(0, func() { tr.ADUSubmitted(0, 7, 42, 1000) })
	at(1*time.Millisecond, func() { tr.FragmentSent(0, 7, 0, 1000, false, false, time.Millisecond) })
	at(5*time.Millisecond, func() { tr.FragmentReceived(0, 7, 0, 1000, false) })
	at(6*time.Millisecond, func() { tr.ADUDelivered(0, 7, 1000) })
	if err := s.Run(); err != nil {
		panic(err)
	}

	a := tr.Analyze().ADU(0, 7)
	fmt.Printf("adu %d (tag %d): %s after %v\n", a.Name, a.Tag, a.Outcome, a.Attr.Total)
	fmt.Printf("pace=%v transit=%v reassembly=%v\n",
		a.Attr.SenderPace, a.Attr.NetTransit, a.Attr.Reassembly)
	// Output:
	// adu 7 (tag 42): delivered after 6ms
	// pace=1ms transit=4ms reassembly=1ms
}
