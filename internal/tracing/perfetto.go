package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto / chrome://tracing export: the legacy Trace Event JSON
// format ({"traceEvents": [...]}, timestamps in microseconds). One
// "thread" per tracer track (alf/snd/N, alf/rcv/N, otp/N, net links,
// faults); ADU lifecycles and fault windows are async spans (they
// overlap freely), head-of-line stalls are complete spans (sequential
// per connection), point events are instants, and causal links are
// flow arrows sharing a flow id.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`  // instant scope
	BP   string         `json:"bp,omitempty"` // flow binding point
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const perfettoPid = 1

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WritePerfetto writes the recorded trace as Chrome/Perfetto trace-event
// JSON. Output is deterministic for a given trace: thread ids are
// assigned by sorted track name and events appear in recorded order.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	var events []Event
	var rep *Report
	if t != nil {
		events = t.events
		rep = t.Analyze()
	} else {
		rep = (*Tracer)(nil).Analyze()
	}

	// Thread id per track, by sorted name.
	var names []string
	seen := map[string]bool{}
	for _, e := range events {
		if e.Track != "" && !seen[e.Track] {
			seen[e.Track] = true
			names = append(names, e.Track)
		}
	}
	sort.Strings(names)
	tid := make(map[string]int, len(names))
	out := make([]traceEvent, 0, 2*len(events)+2*len(names)+4)
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", Pid: perfettoPid,
		Args: map[string]any{"name": "alf-sim"},
	})
	for i, n := range names {
		tid[n] = i + 1
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: i + 1,
			Args: map[string]any{"name": n},
		})
	}

	// ADU lifecycle spans (async: pipelined ADUs overlap).
	for _, a := range rep.ADUs {
		if a.Submitted == Unset {
			continue
		}
		end := a.Settled
		if end == Unset {
			end = rep.End
		}
		track := fmt.Sprintf("alf/snd/%d", a.Stream)
		id := fmt.Sprintf("adu/%d/%d", a.Stream, a.Name)
		args := map[string]any{
			"outcome": a.Outcome, "size": a.Size, "frags": a.Frags,
			"retx": a.Retx, "nacks": a.Nacks, "drops": a.Drops,
			"attr_total_ns":      int64(a.Attr.Total),
			"attr_pace_ns":       int64(a.Attr.SenderPace),
			"attr_transit_ns":    int64(a.Attr.NetTransit),
			"attr_retx_wait_ns":  int64(a.Attr.RetransmitWait),
			"attr_reassembly_ns": int64(a.Attr.Reassembly),
		}
		out = append(out,
			traceEvent{Name: fmt.Sprintf("ADU %d", a.Name), Ph: "b", Cat: "adu",
				ID: id, Ts: us(int64(a.Submitted)), Pid: perfettoPid, Tid: tid[track], Args: args},
			traceEvent{Name: fmt.Sprintf("ADU %d", a.Name), Ph: "e", Cat: "adu",
				ID: id, Ts: us(int64(end)), Pid: perfettoPid, Tid: tid[track]},
		)
	}
	// OTP message spans.
	for _, m := range rep.Msgs {
		end := m.Delivered
		if end == Unset {
			end = rep.End
		}
		track := fmt.Sprintf("otp/%d", m.Conn)
		id := fmt.Sprintf("msg/%d/%d", m.Conn, m.Index)
		out = append(out,
			traceEvent{Name: fmt.Sprintf("msg %d", m.Index), Ph: "b", Cat: "msg",
				ID: id, Ts: us(int64(m.Submitted)), Pid: perfettoPid, Tid: tid[track],
				Args: map[string]any{
					"outcome": m.Outcome, "retx": m.Retx, "drops": m.Drops,
					"attr_total_ns":     int64(m.Attr.Total),
					"attr_hol_stall_ns": int64(m.Attr.HOLStall),
				}},
			traceEvent{Name: fmt.Sprintf("msg %d", m.Index), Ph: "e", Cat: "msg",
				ID: id, Ts: us(int64(end)), Pid: perfettoPid, Tid: tid[track]},
		)
	}
	// Head-of-line stalls: sequential per connection, complete spans.
	for _, s := range rep.Stalls {
		end := s.End
		if end == Unset {
			end = rep.End
		}
		track := fmt.Sprintf("otp/%d", s.Conn)
		out = append(out, traceEvent{
			Name: "HOL stall", Ph: "X", Cat: "stall",
			Ts: us(int64(s.Begin)), Dur: us(int64(end - s.Begin)),
			Pid: perfettoPid, Tid: tid[track],
		})
	}
	// Fault windows (async: overlapping windows are refcounted).
	for _, f := range rep.Faults {
		end := f.End
		if end == Unset {
			end = rep.End
		}
		id := fmt.Sprintf("fault/%d", f.Flow)
		out = append(out,
			traceEvent{Name: "fault " + f.Kind, Ph: "b", Cat: "fault",
				ID: id, Ts: us(int64(f.Begin)), Pid: perfettoPid, Tid: tid["faults"]},
			traceEvent{Name: "fault " + f.Kind, Ph: "e", Cat: "fault",
				ID: id, Ts: us(int64(end)), Pid: perfettoPid, Tid: tid["faults"]},
		)
	}

	// Point events and flow bookkeeping.
	type flowPoint struct {
		ev   Event
		tidN int
	}
	flows := map[uint64][]flowPoint{}
	for _, e := range events {
		var name string
		switch e.Kind {
		case NetDrop:
			name = "drop:" + e.Cause
			if e.Proto != "" {
				name += " " + e.Proto
			}
		case NackTX:
			name = fmt.Sprintf("nack %d", e.ADU)
		case FragRetx:
			name = fmt.Sprintf("retx %d+%d", e.ADU, e.Off)
		case SegRetx:
			name = fmt.Sprintf("seg-retx @%d", e.Off)
		case ADUDeliver:
			name = fmt.Sprintf("deliver %d", e.ADU)
		case ADULoss:
			name = fmt.Sprintf("lost %d", e.ADU)
		case ADUExpire:
			name = fmt.Sprintf("expire %d", e.ADU)
		case ChecksumFail:
			name = fmt.Sprintf("checksum-fail %d", e.ADU)
		case StallOpen:
			name = fmt.Sprintf("stall @%d", e.Off)
		}
		if name != "" {
			out = append(out, traceEvent{
				Name: name, Ph: "i", S: "t", Cat: e.Kind.String(),
				Ts: us(int64(e.At)), Pid: perfettoPid, Tid: tid[e.Track],
			})
		}
		if e.Flow != 0 {
			flows[e.Flow] = append(flows[e.Flow], flowPoint{e, tid[e.Track]})
		}
	}

	// Causal links as flow arrows: start at the first event carrying the
	// id, step through intermediates, finish at the last.
	var flowIDs []uint64
	for id, pts := range flows {
		if len(pts) >= 2 {
			flowIDs = append(flowIDs, id)
		}
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		pts := flows[id]
		name := pts[0].ev.Kind.String()
		for i, p := range pts {
			ph := "t"
			switch i {
			case 0:
				ph = "s"
			case len(pts) - 1:
				ph = "f"
			}
			te := traceEvent{
				Name: "cause:" + name, Ph: ph, Cat: "causal",
				ID: fmt.Sprintf("flow/%d", id),
				Ts: us(int64(p.ev.At)), Pid: perfettoPid, Tid: p.tidN,
			}
			if ph == "f" {
				te.BP = "e"
			}
			out = append(out, te)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}
