package tracing

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Terminal renderings of an analyzed trace: a run summary, a per-unit
// attribution table, and a single-ADU timeline. All output is
// deterministic (virtual timestamps, sorted iteration).

func fmtTime(t sim.Time) string {
	if t == Unset {
		return "-"
	}
	return fmt.Sprintf("%.3fms", float64(t)/1e6)
}

func fmtDur(d sim.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/1e6)
}

// WriteSummary prints run-level totals: ADU and message outcomes,
// drops by cause, stall and fault window counts.
func (r *Report) WriteSummary(w io.Writer) {
	var delivered, lost, expired, pending int
	var retx, drops, nacks int
	for _, a := range r.ADUs {
		switch a.Outcome {
		case "delivered":
			delivered++
		case "lost":
			lost++
		case "expired":
			expired++
		default:
			pending++
		}
		retx += a.Retx
		drops += a.Drops
		nacks += a.Nacks
	}
	fmt.Fprintf(w, "trace: %s simulated\n", fmtTime(r.End))
	if len(r.ADUs) > 0 {
		fmt.Fprintf(w, "alf: %d ADUs  delivered=%d lost=%d expired=%d pending=%d  nacks=%d retx=%d frag-drops=%d\n",
			len(r.ADUs), delivered, lost, expired, pending, nacks, retx, drops)
	}
	if len(r.Msgs) > 0 {
		var mDelivered, mRetx int
		var stallTotal sim.Duration
		for _, m := range r.Msgs {
			if m.Outcome == "delivered" {
				mDelivered++
			}
			mRetx += m.Retx
			stallTotal += m.Attr.HOLStall
		}
		fmt.Fprintf(w, "otp: %d msgs  delivered=%d pending=%d  retx-overlaps=%d  hol-stall(sum over msgs)=%s\n",
			len(r.Msgs), mDelivered, len(r.Msgs)-mDelivered, mRetx, fmtDur(stallTotal))
	}
	if len(r.Stalls) > 0 {
		var total sim.Duration
		for _, s := range r.Stalls {
			end := s.End
			if end == Unset {
				end = r.End
			}
			total += end.Sub(s.Begin)
		}
		fmt.Fprintf(w, "stalls: %d windows, %s blocked\n", len(r.Stalls), fmtDur(total))
	}
	if len(r.Drops) > 0 {
		var causes []string
		for c := range r.Drops {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		fmt.Fprintf(w, "net drops:")
		for _, c := range causes {
			fmt.Fprintf(w, " %s=%d", c, r.Drops[c])
		}
		fmt.Fprintln(w)
	}
	if len(r.Faults) > 0 {
		byKind := make(map[string]int)
		for _, f := range r.Faults {
			byKind[f.Kind]++
		}
		var kinds []string
		for k := range byKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "faults: %d windows", len(r.Faults))
		for _, k := range kinds {
			fmt.Fprintf(w, " %s=%d", k, byKind[k])
		}
		fmt.Fprintln(w)
	}
}

// WriteAttrTable prints the per-unit latency attribution table: one
// row per ALF ADU and per OTP message, phases in milliseconds.
func (r *Report) WriteAttrTable(w io.Writer) {
	if len(r.ADUs) > 0 {
		fmt.Fprintf(w, "%-14s %-10s %9s %9s %9s %9s %9s %9s %5s %5s\n",
			"alf adu", "outcome", "total", "pace", "transit", "retx-wait", "reasm", "hol", "retx", "drops")
		for _, a := range r.ADUs {
			fmt.Fprintf(w, "%-14s %-10s %9s %9s %9s %9s %9s %9s %5d %5d\n",
				fmt.Sprintf("s%d/%d", a.Stream, a.Name), a.Outcome,
				fmtDur(a.Attr.Total), fmtDur(a.Attr.SenderPace), fmtDur(a.Attr.NetTransit),
				fmtDur(a.Attr.RetransmitWait), fmtDur(a.Attr.Reassembly), fmtDur(a.Attr.HOLStall),
				a.Retx, a.Drops)
		}
	}
	if len(r.Msgs) > 0 {
		if len(r.ADUs) > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-14s %-10s %9s %9s %9s %9s %9s %9s %5s %5s\n",
			"otp msg", "outcome", "total", "pace", "transit", "retx-wait", "reasm", "hol", "retx", "drops")
		for _, m := range r.Msgs {
			fmt.Fprintf(w, "%-14s %-10s %9s %9s %9s %9s %9s %9s %5d %5d\n",
				fmt.Sprintf("c%d/%d", m.Conn, m.Index), m.Outcome,
				fmtDur(m.Attr.Total), fmtDur(m.Attr.SenderPace), fmtDur(m.Attr.NetTransit),
				fmtDur(m.Attr.RetransmitWait), fmtDur(m.Attr.Reassembly), fmtDur(m.Attr.HOLStall),
				m.Retx, m.Drops)
		}
	}
}

// WriteADU prints the full event timeline of one ADU, or a note when
// the trace never saw it.
func (r *Report) WriteADU(w io.Writer, stream byte, name uint64) {
	a := r.ADU(stream, name)
	if a == nil {
		fmt.Fprintf(w, "adu s%d/%d: not in trace\n", stream, name)
		return
	}
	fmt.Fprintf(w, "adu s%d/%d: %s, %d bytes, tag %d\n", a.Stream, a.Name, a.Outcome, a.Size, a.Tag)
	for _, e := range a.Events {
		fmt.Fprintf(w, "  %10s  %-13s %s", fmtTime(e.At), e.Kind.String(), e.Track)
		switch e.Kind {
		case FragTX, FragRetx, ParityTX, FragRX, ParityRX:
			fmt.Fprintf(w, "  off=%d len=%d", e.Off, e.Len)
			if e.Dur > 0 {
				fmt.Fprintf(w, " pacer-wait=%s", fmtDur(e.Dur))
			}
		case NetQueue:
			fmt.Fprintf(w, "  queue-wait=%s ser=%s", fmtDur(e.Dur), fmtDur(e.Dur2))
		case NetDeliver:
			fmt.Fprintf(w, "  prop=%s", fmtDur(e.Dur))
		case NetDrop:
			fmt.Fprintf(w, "  cause=%s", e.Cause)
		case ADUSubmit, ADUDeliver:
			fmt.Fprintf(w, "  %d bytes", e.Len)
		}
		if e.Flow != 0 {
			fmt.Fprintf(w, "  [flow %d]", e.Flow)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  attribution: total=%s pace=%s transit=%s retx-wait=%s reasm=%s (queue=%s ser=%s prop=%s across %d frags)\n",
		fmtDur(a.Attr.Total), fmtDur(a.Attr.SenderPace), fmtDur(a.Attr.NetTransit),
		fmtDur(a.Attr.RetransmitWait), fmtDur(a.Attr.Reassembly),
		fmtDur(a.Attr.Queueing), fmtDur(a.Attr.Serialization), fmtDur(a.Attr.Propagation),
		a.Frags+a.Retx+a.Parity)
}
