package tracing

import (
	"encoding/binary"

	"repro/internal/checksum"
)

// The network layer is deliberately payload-opaque (endpoints hand
// netsim a []byte and nothing else), but a useful drop annotation has
// to say *which* ADU died on the wire. Rather than widen the transport
// API with identity side-channels, the tracer sniffs the payload the
// same way internal/trace does: hand-decode the known wire formats
// without importing the protocol packages (tracing must stay import-free
// of core/otp/netsim, which all import it).
//
// Disambiguation: ALF type bytes (1=DATA, 2=CTRL, 3=HB) collide with
// OTP flag values (1=DATA, 2=ACK, 3=DATA|ACK) at offset 0, so the
// first byte alone cannot classify a packet. Both formats carry an
// Internet checksum, and a packet valid under one format has ~2^-16
// odds of also verifying under the other; the sniffer tries ALF first
// (header checksum over the fixed 34-byte header), then OTP (checksum
// over the whole segment). A rare misclassification mislabels one
// annotation, never corrupts protocol state — acceptable for tracing.

// refKind says what a sniff recognized.
type refKind uint8

const (
	refNone    refKind = iota
	refALFData         // ALF DATA fragment: ID=stream, ADU=name, Off/Len=fragment
	refALFCtrl         // ALF control: ID=stream
	refALFHB           // ALF heartbeat: ID=stream, ADU=declared next name
	refALFFB           // ALF feedback report: ID=stream, ADU=report seq
	refALFCA           // ALF custody ack: ID=stream, ADU=custody frontier
	refOTPData         // OTP DATA segment: ID=conn, Off=seq, Len=payload
	refOTPAck          // OTP pure ACK: ID=conn
)

// Wire layout constants duplicated from internal/core and internal/otp
// (see those packages' header comments; change them together).
const (
	alfHeaderSize    = 34
	alfHeartbeatSize = 12
	alfFeedbackSize  = 24
	alfTypeData      = 1
	alfTypeCtrl      = 2
	alfTypeHB        = 3
	alfTypeFB        = 4
	alfTypeCA        = 5

	otpHeaderSize = 16
	otpFlagData   = 1 << 0
	otpFlagAck    = 1 << 1
)

// sniffInto classifies pkt and fills e's identity fields (ID, ADU,
// Off, Len) for recognized formats. Len is left as set by the caller
// (the full wire size) except for OTP data, where it becomes the
// payload length so drop ranges line up with stream offsets.
func sniffInto(e *Event, pkt []byte) refKind {
	if len(pkt) == 0 {
		return refNone
	}
	switch pkt[0] {
	case alfTypeData:
		// Structural check first: an ALF fragment is exactly header +
		// FragLen bytes. Checksums alone can collide deterministically
		// (an OTP data segment with a zero payload folds to the same
		// sum over any prefix), so shape narrows before arithmetic.
		if len(pkt) >= alfHeaderSize &&
			len(pkt) == alfHeaderSize+int(binary.BigEndian.Uint16(pkt[28:30])) &&
			checksum.Verify16(pkt[:alfHeaderSize]) {
			e.ID = pkt[1]
			e.ADU = binary.BigEndian.Uint64(pkt[2:10])
			e.Off = int64(binary.BigEndian.Uint32(pkt[24:28]))
			e.Proto = ProtoALFData
			return refALFData
		}
	case alfTypeCtrl:
		if n := len(pkt); n >= 14 && checksum.Verify16(pkt) {
			if k := int(binary.BigEndian.Uint16(pkt[10:12])); n == 12+8*k+2 {
				e.ID = pkt[1]
				e.Proto = ProtoALFCtrl
				return refALFCtrl
			}
		}
	case alfTypeHB:
		if len(pkt) == alfHeartbeatSize && checksum.Verify16(pkt) {
			e.ID = pkt[1]
			e.ADU = binary.BigEndian.Uint64(pkt[2:10])
			e.Proto = ProtoALFHB
			return refALFHB
		}
	case alfTypeFB:
		// No OTP collision possible: OTP flag values stop at 3.
		if len(pkt) == alfFeedbackSize && checksum.Verify16(pkt) {
			e.ID = pkt[1]
			e.ADU = uint64(binary.BigEndian.Uint32(pkt[2:6]))
			e.Proto = ProtoALFFB
			return refALFFB
		}
	case alfTypeCA:
		// No OTP collision possible either. A custody ack is
		// 14 + 8*count + 2 bytes (see internal/core wire.go).
		if n := len(pkt); n >= 16 && checksum.Verify16(pkt) {
			if k := int(binary.BigEndian.Uint16(pkt[12:14])); n == 14+8*k+2 {
				e.ID = pkt[1]
				e.ADU = binary.BigEndian.Uint64(pkt[4:12])
				e.Proto = ProtoALFCA
				return refALFCA
			}
		}
	}
	// Not a checksum-valid ALF packet; try OTP.
	if len(pkt) >= otpHeaderSize && checksum.Verify16(pkt) {
		flags := pkt[0]
		plen := int(binary.BigEndian.Uint16(pkt[14:16]))
		if len(pkt) == otpHeaderSize+plen {
			e.ID = pkt[1]
			if flags&otpFlagData != 0 && plen > 0 {
				e.Off = int64(binary.BigEndian.Uint32(pkt[2:6]))
				e.Len = plen
				e.Proto = ProtoOTPData
				return refOTPData
			}
			if flags&otpFlagAck != 0 {
				e.Proto = ProtoOTPAck
				return refOTPAck
			}
		}
	}
	return refNone
}

// Proto values set on network events by the payload sniffer.
const (
	ProtoALFData = "alf-data"
	ProtoALFCtrl = "alf-ctrl"
	ProtoALFHB   = "alf-hb"
	ProtoALFFB   = "alf-fb"
	ProtoALFCA   = "alf-ca"
	ProtoOTPData = "otp-data"
	ProtoOTPAck  = "otp-ack"
)
