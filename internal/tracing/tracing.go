// Package tracing is the per-ADU lifecycle tracer: a low-overhead,
// nil-safe span recorder on the simulator's virtual clock that follows
// every Application Data Unit through its full life — submitted,
// framed, fragments on the wire, dropped or retransmitted, reassembled,
// delivered or lost — with causal links between events (a NACK to the
// retransmission it provoked, a fault window to the drops inside it, a
// loss to the head-of-line stall it opened on the ordered transport).
//
// Where internal/metrics answers "how much, in aggregate", tracing
// answers "where did *this* ADU's nanoseconds go". internal/trace
// stays what it is — the wire decoder that renders one packet as one
// line; this package records structured events and reconstructs
// timelines from them.
//
// # Cost when disabled
//
// Every recording method is safe on a nil *Tracer and returns after a
// single nil-check branch, mirroring the internal/metrics contract: an
// endpoint built without a tracer pays ~1 ns per event and allocates
// nothing (see bench_test.go). Layers keep a *Tracer in their config
// (alf.Config.Tracer, otp.Config.Tracer, netsim.Network.SetTracer,
// faults.Injector.SetTracer); nil means off.
//
// # Determinism
//
// Timestamps come exclusively from the sim.Scheduler's virtual clock,
// so a seeded run records a byte-identical trace. Exports (Perfetto
// JSON, terminal tables) iterate events in recorded order and assign
// track ids by sorted track name, so their output is deterministic too.
//
// # Causality
//
// The tracer derives causal links internally rather than threading ids
// through every layer:
//
//   - NACK → retransmission: NacksSent registers a pending flow per
//     (stream, name); the next FragmentSent with retx=true for that
//     name attaches it.
//   - loss → head-of-line stall: a sniffed OTP data drop remembers its
//     sequence range; a StallOpened blocked on an offset inside that
//     range attaches the drop's flow.
//   - fault window → drop: FaultBegan records which links a window
//     covers; a down-drop on a covered link attaches the window's flow.
//
// Network-level events identify their ADU by sniffing the opaque
// payload (see sniff.go); endpoint events are authoritative.
package tracing

import (
	"fmt"

	"repro/internal/sim"
)

// Kind discriminates trace events.
type Kind uint8

// Event kinds, grouped by the layer that records them.
const (
	// ALF endpoint events (internal/core).
	ADUSubmit    Kind = iota + 1 // application handed an ADU to the sender
	FragTX                       // fragment handed to the wire (Dur = pacer wait)
	FragRetx                     // fragment retransmitted (Flow links the NACK)
	ParityTX                     // FEC parity fragment emitted
	HeartbeatTX                  // sender declared stream extent
	FragRX                       // receiver accepted a data fragment
	ParityRX                     // receiver accepted a parity fragment
	NackTX                       // receiver requested recovery of one ADU
	ChecksumFail                 // completed ADU failed verification, discarded
	ADUDeliver                   // verified ADU handed to the application
	ADULoss                      // receiver gave up and reported the loss
	ADUExpire                    // sender shed retention past ADUDeadline

	// OTP endpoint events (internal/otp). ADU carries the message index
	// (one index per Conn.Send call); Off/Len carry stream-offset ranges.
	MsgSubmit  // application wrote one message to the stream
	SegTX      // DATA segment transmitted
	SegRetx    // DATA segment retransmitted
	SegOOO     // segment buffered ahead of a gap
	SegDeliver // in-order delivery advanced (Off = old rcvNxt)
	StallOpen  // head-of-line stall opened (Off = blocked offset)
	StallClose // stall closed (Dur = stall length)

	// Network events (internal/netsim). Track is the link label.
	NetQueue   // packet committed to serialization (Dur = queue wait, Dur2 = serialization)
	NetDeliver // packet handed to the destination node (Dur = propagation)
	NetDrop    // packet dropped (Cause = queue|line|down)

	// Fault-plane events (internal/faults). Cause carries the kind.
	FaultBegin
	FaultEnd

	// Overload-control events (internal/core ratecontrol). Appended
	// after the original block so existing recorded kind values never
	// shift.
	ADUShed    // Droppable ADU shed before transmission (sender overloaded)
	FeedbackTX // receiver emitted a delivery report
	RateChange // controller set a new pacing rate (Off = old bps, Len = new bps)

	// Custody-transfer events (internal/relay and the sender's custody
	// handling). Appended after the overload block so existing recorded
	// kind values never shift.
	CustodyStore   // relay took custody of a complete ADU
	CustodyAckTX   // relay emitted a custody-ack frame upstream
	CustodyRelease // upstream custodian freed retention on a custody ack
	CustodyEvict   // relay evicted a non-Critical ADU to fit a new one
	CustodyShed    // relay refused custody: store full of unevictables
	CustodyRetx    // relay re-originated a custody ADU downstream
)

// String names the kind as it appears in timelines.
func (k Kind) String() string {
	switch k {
	case ADUSubmit:
		return "submit"
	case FragTX:
		return "frag-tx"
	case FragRetx:
		return "frag-retx"
	case ParityTX:
		return "parity-tx"
	case HeartbeatTX:
		return "hb-tx"
	case FragRX:
		return "frag-rx"
	case ParityRX:
		return "parity-rx"
	case NackTX:
		return "nack"
	case ChecksumFail:
		return "checksum-fail"
	case ADUDeliver:
		return "deliver"
	case ADULoss:
		return "lost"
	case ADUExpire:
		return "expire"
	case MsgSubmit:
		return "msg-submit"
	case SegTX:
		return "seg-tx"
	case SegRetx:
		return "seg-retx"
	case SegOOO:
		return "seg-ooo"
	case SegDeliver:
		return "seg-deliver"
	case StallOpen:
		return "stall-open"
	case StallClose:
		return "stall-close"
	case NetQueue:
		return "net-queue"
	case NetDeliver:
		return "net-deliver"
	case NetDrop:
		return "net-drop"
	case FaultBegin:
		return "fault-begin"
	case FaultEnd:
		return "fault-end"
	case ADUShed:
		return "shed"
	case FeedbackTX:
		return "feedback"
	case RateChange:
		return "rate"
	case CustodyStore:
		return "custody-store"
	case CustodyAckTX:
		return "custody-ack"
	case CustodyRelease:
		return "custody-release"
	case CustodyEvict:
		return "custody-evict"
	case CustodyShed:
		return "custody-shed"
	case CustodyRetx:
		return "custody-retx"
	default:
		return fmt.Sprintf("kind-%d", uint8(k))
	}
}

// Event is one recorded trace event. Which fields are meaningful
// depends on Kind (see the kind constants).
type Event struct {
	At    sim.Time
	Kind  Kind
	Track string // "alf/snd/3", "alf/rcv/3", "otp/1", "net/a->b/0", "faults"
	ID    byte   // stream id (ALF) or connection id (OTP)
	ADU   uint64 // ADU name (ALF) or message index (OTP MsgSubmit)
	Tag   uint64 // application tag (ADUSubmit only)
	Off   int64  // fragment offset (ALF) or stream offset (OTP)
	Len   int    // fragment/segment/ADU payload length
	Cause string // drop cause, fault kind
	Proto string // sniffed payload class on net events: alf-data, alf-ctrl, alf-hb, otp-data, otp-ack
	Dur   sim.Duration
	Dur2  sim.Duration
	Flow  uint64 // non-zero: causal flow id shared by linked events
}

// Tracer records events on a virtual clock. The zero value is not
// usable; create tracers with New. A nil *Tracer is a valid disabled
// tracer: every method is a near-free no-op.
//
// Tracer is not safe for concurrent use; like the rest of the
// simulation it lives on the single scheduler goroutine.
type Tracer struct {
	sched  *sim.Scheduler
	events []Event
	limit  int

	// Dropped counts events discarded after the limit was reached.
	Dropped int64

	// Causal bookkeeping (see package comment).
	pendingNack map[nackKey]uint64  // (stream, name) -> flow id
	pendingDrop map[byte]*dropRange // conn id -> last dropped OTP data range
	faults      []*faultWindow
	nextFlow    uint64

	tracks map[trackKey]string // interned track names
}

// trackKey keys the track-name intern table without allocating: the
// prefix is always a string constant, so the key build is free.
type trackKey struct {
	prefix string
	id     byte
}

type nackKey struct {
	stream byte
	name   uint64
}

type dropRange struct {
	off  int64
	end  int64
	flow uint64
}

type faultWindow struct {
	flow   uint64
	kind   string
	links  map[string]bool
	active bool
}

// DefaultLimit bounds a tracer's event buffer unless SetLimit raises
// it: enough for hours of simulated protocol traffic, small enough
// that an accidental always-on tracer cannot eat the host.
const DefaultLimit = 1 << 20

// New returns a tracer recording on sched's virtual clock. sched may
// be nil when the scheduler does not exist yet (a harness that builds
// its own, like internal/faults/soak): the tracer records nothing
// until Bind attaches a clock.
func New(sched *sim.Scheduler) *Tracer {
	return &Tracer{
		sched:       sched,
		limit:       DefaultLimit,
		pendingNack: make(map[nackKey]uint64),
		pendingDrop: make(map[byte]*dropRange),
		tracks:      make(map[trackKey]string),
	}
}

// Bind attaches the tracer to a scheduler's virtual clock. Harnesses
// that accept a caller-made tracer but construct their scheduler
// internally call this before traffic starts. Nil-safe; a later Bind
// replaces the clock.
func (t *Tracer) Bind(sched *sim.Scheduler) {
	if t == nil {
		return
	}
	t.sched = sched
}

// SetLimit bounds the number of retained events (0 or negative means
// DefaultLimit). Events past the limit are counted in Dropped and
// discarded.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultLimit
	}
	t.limit = n
}

// Events returns the recorded events in order. The slice is shared;
// callers must not modify it.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of recorded events (0 on a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// record appends one event stamped with the current virtual time.
func (t *Tracer) record(e Event) {
	if t.sched == nil {
		return // unbound (New(nil) before Bind): no clock, no events
	}
	if len(t.events) >= t.limit {
		t.Dropped++
		return
	}
	e.At = t.sched.Now()
	t.events = append(t.events, e)
}

// track interns a formatted track name so steady-state recording does
// not re-format (or re-allocate) per event.
func (t *Tracer) track(prefix string, id byte) string {
	key := trackKey{prefix, id}
	if s, ok := t.tracks[key]; ok {
		return s
	}
	s := fmt.Sprintf("%s%d", prefix, id)
	t.tracks[key] = s
	return s
}

// flow allocates a fresh causal flow id (never zero).
func (t *Tracer) flow() uint64 {
	t.nextFlow++
	return t.nextFlow
}

// ---- ALF endpoint hooks ------------------------------------------------

// ADUSubmitted records the application handing an ADU to the sender.
func (t *Tracer) ADUSubmitted(stream byte, name, tag uint64, size int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: ADUSubmit, Track: t.track("alf/snd/", stream),
		ID: stream, ADU: name, Tag: tag, Len: size})
}

// FragmentSent records one fragment handed to the wire. wait is the
// pacer delay between framing and the actual handoff. Retransmissions
// attach the flow of the NACK that provoked them, when one is pending.
func (t *Tracer) FragmentSent(stream byte, name uint64, off, n int, retx, parity bool, wait sim.Duration) {
	if t == nil {
		return
	}
	kind := FragTX
	var flow uint64
	switch {
	case parity:
		kind = ParityTX
	case retx:
		kind = FragRetx
		flow = t.pendingNack[nackKey{stream, name}]
	}
	t.record(Event{Kind: kind, Track: t.track("alf/snd/", stream),
		ID: stream, ADU: name, Off: int64(off), Len: n, Dur: wait, Flow: flow})
}

// HeartbeatSent records a stream-extent declaration.
func (t *Tracer) HeartbeatSent(stream byte, next uint64) {
	if t == nil {
		return
	}
	t.record(Event{Kind: HeartbeatTX, Track: t.track("alf/snd/", stream),
		ID: stream, ADU: next})
}

// FragmentReceived records a fragment accepted into reassembly. A
// fragment answering a pending NACK closes (consumes) that flow so the
// causal arrow runs NACK → retransmission → arrival.
func (t *Tracer) FragmentReceived(stream byte, name uint64, off, n int, parity bool) {
	if t == nil {
		return
	}
	kind := FragRX
	if parity {
		kind = ParityRX
	}
	k := nackKey{stream, name}
	flow := t.pendingNack[k]
	if flow != 0 {
		delete(t.pendingNack, k)
	}
	t.record(Event{Kind: kind, Track: t.track("alf/rcv/", stream),
		ID: stream, ADU: name, Off: int64(off), Len: n, Flow: flow})
}

// ADUChecksumFailed records a completed ADU discarded on verification.
func (t *Tracer) ADUChecksumFailed(stream byte, name uint64) {
	if t == nil {
		return
	}
	t.record(Event{Kind: ChecksumFail, Track: t.track("alf/rcv/", stream),
		ID: stream, ADU: name})
}

// ADUDelivered records a verified ADU handed to the application.
func (t *Tracer) ADUDelivered(stream byte, name uint64, size int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: ADUDeliver, Track: t.track("alf/rcv/", stream),
		ID: stream, ADU: name, Len: size})
}

// ADULost records the receiver abandoning an ADU.
func (t *Tracer) ADULost(stream byte, name uint64) {
	if t == nil {
		return
	}
	t.record(Event{Kind: ADULoss, Track: t.track("alf/rcv/", stream),
		ID: stream, ADU: name})
}

// ADUExpired records the sender shedding retention past ADUDeadline.
func (t *Tracer) ADUExpired(stream byte, name uint64) {
	if t == nil {
		return
	}
	t.record(Event{Kind: ADUExpire, Track: t.track("alf/snd/", stream),
		ID: stream, ADU: name})
}

// NacksSent records one recovery request per named ADU and opens a
// causal flow each, to be attached by the retransmission it provokes.
func (t *Tracer) NacksSent(stream byte, names []uint64) {
	if t == nil {
		return
	}
	for _, name := range names {
		f := t.flow()
		t.pendingNack[nackKey{stream, name}] = f
		t.record(Event{Kind: NackTX, Track: t.track("alf/rcv/", stream),
			ID: stream, ADU: name, Flow: f})
	}
}

// ADUShed records a Droppable ADU shed before transmission while the
// sender was overloaded. name is the name the ADU would have been
// assigned (it consumes none).
func (t *Tracer) ADUShed(stream byte, name, tag uint64, size int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: ADUShed, Track: t.track("alf/snd/", stream),
		ID: stream, ADU: name, Tag: tag, Len: size})
}

// FeedbackSent records the receiver emitting delivery report seq with
// wireBytes cumulative wire volume accepted.
func (t *Tracer) FeedbackSent(stream byte, seq uint32, wireBytes int64) {
	if t == nil {
		return
	}
	t.record(Event{Kind: FeedbackTX, Track: t.track("alf/rcv/", stream),
		ID: stream, ADU: uint64(seq), Off: wireBytes})
}

// RateChanged records a controller-driven pacing change from oldBps to
// newBps (Off and Len respectively, in bits/s).
func (t *Tracer) RateChanged(stream byte, oldBps, newBps float64) {
	if t == nil {
		return
	}
	t.record(Event{Kind: RateChange, Track: t.track("alf/snd/", stream),
		ID: stream, Off: int64(oldBps), Len: int(newBps)})
}

// ---- Custody-relay hooks -----------------------------------------------

// CustodyStored records a relay taking custody of a complete ADU of
// size payload bytes. relay names the custody node's track.
func (t *Tracer) CustodyStored(relay string, stream byte, name uint64, size int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: CustodyStore, Track: "relay/" + relay,
		ID: stream, ADU: name, Len: size})
}

// CustodyAckSent records a relay acknowledging custody upstream: cum
// is the custody frontier and n the count of out-of-order names in the
// frame.
func (t *Tracer) CustodyAckSent(relay string, stream byte, cum uint64, n int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: CustodyAckTX, Track: "relay/" + relay,
		ID: stream, ADU: cum, Len: n})
}

// CustodyReleased records the upstream custodian (the original sender)
// freeing its retained copy of an ADU on a custody ack from relay id.
func (t *Tracer) CustodyReleased(stream, relay byte, name uint64) {
	if t == nil {
		return
	}
	t.record(Event{Kind: CustodyRelease, Track: t.track("alf/snd/", stream),
		ID: stream, ADU: name, Off: int64(relay)})
}

// CustodyEvicted records a relay evicting a stored non-Critical ADU to
// make room.
func (t *Tracer) CustodyEvicted(relay string, stream byte, name uint64, size int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: CustodyEvict, Track: "relay/" + relay,
		ID: stream, ADU: name, Len: size})
}

// CustodyShedded records a relay refusing custody of an arriving ADU
// because the store held only unevictable (Critical) data.
func (t *Tracer) CustodyShedded(relay string, stream byte, name uint64, size int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: CustodyShed, Track: "relay/" + relay,
		ID: stream, ADU: name, Len: size})
}

// CustodyResent records a relay re-originating a custody ADU toward
// the next hop (heal-triggered or periodic retry).
func (t *Tracer) CustodyResent(relay string, stream byte, name uint64, frags int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: CustodyRetx, Track: "relay/" + relay,
		ID: stream, ADU: name, Len: frags})
}

// ---- OTP endpoint hooks ------------------------------------------------

// MessageSubmitted records one application write to the ordered stream:
// index is the per-connection write count, off the stream offset where
// the message begins. Messages are the OTP-side ADU equivalent the
// analysis attributes stalls to.
func (t *Tracer) MessageSubmitted(conn byte, index uint64, off int64, n int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: MsgSubmit, Track: t.track("otp/", conn),
		ID: conn, ADU: index, Off: off, Len: n})
}

// SegmentSent records a DATA segment transmission.
func (t *Tracer) SegmentSent(conn byte, seq int64, n int, retx bool) {
	if t == nil {
		return
	}
	kind := SegTX
	if retx {
		kind = SegRetx
	}
	t.record(Event{Kind: kind, Track: t.track("otp/", conn),
		ID: conn, Off: seq, Len: n})
}

// SegmentBuffered records a segment held behind a gap (out of order).
func (t *Tracer) SegmentBuffered(conn byte, seq int64, n int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: SegOOO, Track: t.track("otp/", conn),
		ID: conn, Off: seq, Len: n})
}

// SegmentDelivered records in-order delivery advancing from oldNxt by
// n bytes.
func (t *Tracer) SegmentDelivered(conn byte, oldNxt int64, n int) {
	if t == nil {
		return
	}
	t.record(Event{Kind: SegDeliver, Track: t.track("otp/", conn),
		ID: conn, Off: oldNxt, Len: n})
}

// StallOpened records a head-of-line stall opening: the stream is
// blocked at offset blockedAt (the §5 in-order delivery cost,
// per-stall — the same signal otp.hol_stall_ns aggregates). If a
// sniffed drop covers the blocked offset, its flow is attached: the
// loss caused this stall.
func (t *Tracer) StallOpened(conn byte, blockedAt int64) {
	if t == nil {
		return
	}
	var flow uint64
	if d := t.pendingDrop[conn]; d != nil && d.off <= blockedAt && blockedAt < d.end {
		flow = d.flow
		delete(t.pendingDrop, conn)
	}
	t.record(Event{Kind: StallOpen, Track: t.track("otp/", conn),
		ID: conn, Off: blockedAt, Flow: flow})
}

// StallClosed records the stall ending after dur.
func (t *Tracer) StallClosed(conn byte, dur sim.Duration) {
	if t == nil {
		return
	}
	t.record(Event{Kind: StallClose, Track: t.track("otp/", conn),
		ID: conn, Dur: dur})
}

// ---- Network hooks (internal/netsim) -----------------------------------

// PacketQueued records a packet committed to serialization on a link:
// qwait is the time it will wait behind earlier packets, ser its own
// serialization time. The payload is sniffed for ADU identity.
func (t *Tracer) PacketQueued(link string, payload []byte, qwait, ser sim.Duration) {
	if t == nil {
		return
	}
	e := Event{Kind: NetQueue, Track: link, Dur: qwait, Dur2: ser, Len: len(payload)}
	sniffInto(&e, payload)
	t.record(e)
}

// PacketDelivered records a packet handed to its destination node after
// prop of propagation (including any reorder holdback).
func (t *Tracer) PacketDelivered(link string, payload []byte, prop sim.Duration) {
	if t == nil {
		return
	}
	e := Event{Kind: NetDeliver, Track: link, Dur: prop, Len: len(payload)}
	sniffInto(&e, payload)
	t.record(e)
}

// PacketDropped records a drop with its cause ("queue", "line",
// "down"). Down-drops inside an active fault window attach the
// window's flow; a dropped OTP data segment is remembered so the stall
// it opens can be linked back to it.
func (t *Tracer) PacketDropped(link, cause string, payload []byte) {
	if t == nil {
		return
	}
	e := Event{Kind: NetDrop, Track: link, Cause: cause, Len: len(payload)}
	ref := sniffInto(&e, payload)
	if cause == "down" {
		for i := len(t.faults) - 1; i >= 0; i-- {
			if w := t.faults[i]; w.active && w.links[link] {
				e.Flow = w.flow
				break
			}
		}
	}
	if ref == refOTPData {
		flow := e.Flow
		if flow == 0 {
			flow = t.flow()
			e.Flow = flow
		}
		t.pendingDrop[e.ID] = &dropRange{off: e.Off, end: e.Off + int64(e.Len), flow: flow}
	}
	t.record(e)
}

// ---- Fault-plane hooks (internal/faults) -------------------------------

// FaultBegan records a fault window opening over the named links and
// returns its flow id (0 on a nil tracer). Drops on those links while
// the window is active link back to it.
func (t *Tracer) FaultBegan(kind string, links []string) uint64 {
	if t == nil {
		return 0
	}
	w := &faultWindow{flow: t.flow(), kind: kind, links: make(map[string]bool, len(links)), active: true}
	for _, l := range links {
		w.links[l] = true
	}
	t.faults = append(t.faults, w)
	t.record(Event{Kind: FaultBegin, Track: "faults", Cause: kind, Flow: w.flow})
	return w.flow
}

// FaultEnded records the window identified by flow closing.
func (t *Tracer) FaultEnded(flow uint64) {
	if t == nil {
		return
	}
	for _, w := range t.faults {
		if w.flow == flow && w.active {
			w.active = false
			t.record(Event{Kind: FaultEnd, Track: "faults", Cause: w.kind, Flow: flow})
			return
		}
	}
	t.record(Event{Kind: FaultEnd, Track: "faults", Flow: flow})
}
