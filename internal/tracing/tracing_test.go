package tracing

import (
	"encoding/binary"
	"io"
	"testing"
	"time"

	"repro/internal/checksum"
	"repro/internal/sim"
)

// mkALFData builds a checksum-valid ALF DATA fragment header (no
// payload needed for sniffing: only the 34-byte header is verified).
func mkALFData(stream byte, name uint64, off uint32, fragLen uint16) []byte {
	pkt := make([]byte, 34+int(fragLen))
	pkt[0] = 1
	pkt[1] = stream
	binary.BigEndian.PutUint64(pkt[2:10], name)
	binary.BigEndian.PutUint32(pkt[20:24], uint32(fragLen))
	binary.BigEndian.PutUint32(pkt[24:28], off)
	binary.BigEndian.PutUint16(pkt[28:30], fragLen)
	binary.BigEndian.PutUint16(pkt[32:34], checksum.Sum16(pkt[:34]))
	return pkt
}

// mkALFCtrl builds a checksum-valid control message with k NACKs.
func mkALFCtrl(stream byte, nacks []uint64) []byte {
	msg := make([]byte, 12+8*len(nacks)+2)
	msg[0] = 2
	msg[1] = stream
	binary.BigEndian.PutUint16(msg[10:12], uint16(len(nacks)))
	for i, n := range nacks {
		binary.BigEndian.PutUint64(msg[12+8*i:], n)
	}
	binary.BigEndian.PutUint16(msg[len(msg)-2:], checksum.Sum16(msg))
	return msg
}

// mkALFHB builds a checksum-valid heartbeat.
func mkALFHB(stream byte, next uint64) []byte {
	msg := make([]byte, 12)
	msg[0] = 3
	msg[1] = stream
	binary.BigEndian.PutUint64(msg[2:10], next)
	binary.BigEndian.PutUint16(msg[10:12], checksum.Sum16(msg))
	return msg
}

// mkOTP builds a checksum-valid OTP segment.
func mkOTP(flags, conn byte, seq uint32, payload []byte) []byte {
	seg := make([]byte, 16+len(payload))
	seg[0] = flags
	seg[1] = conn
	binary.BigEndian.PutUint32(seg[2:6], seq)
	binary.BigEndian.PutUint16(seg[14:16], uint16(len(payload)))
	copy(seg[16:], payload)
	binary.BigEndian.PutUint16(seg[12:14], checksum.Sum16(seg))
	return seg
}

func TestSniff(t *testing.T) {
	cases := []struct {
		name string
		pkt  []byte
		want refKind
		id   byte
		adu  uint64
		off  int64
		len_ int
	}{
		{"alf-data", mkALFData(3, 77, 1024, 512), refALFData, 3, 77, 1024, 0},
		{"alf-ctrl", mkALFCtrl(5, []uint64{9, 11}), refALFCtrl, 5, 0, 0, 0},
		{"alf-hb", mkALFHB(7, 42), refALFHB, 7, 42, 0, 0},
		{"otp-data", mkOTP(1, 2, 9000, make([]byte, 300)), refOTPData, 2, 0, 9000, 300},
		{"otp-ack", mkOTP(2, 4, 0, nil), refOTPAck, 4, 0, 0, 0},
		{"empty", nil, refNone, 0, 0, 0, 0},
		{"garbage", []byte{9, 9, 9, 9}, refNone, 0, 0, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var e Event
			got := sniffInto(&e, c.pkt)
			if got != c.want {
				t.Fatalf("sniff = %d, want %d", got, c.want)
			}
			if e.ID != c.id || e.ADU != c.adu || e.Off != c.off {
				t.Errorf("identity = (%d, %d, %d), want (%d, %d, %d)",
					e.ID, e.ADU, e.Off, c.id, c.adu, c.off)
			}
			if c.want == refOTPData && e.Len != c.len_ {
				t.Errorf("otp data Len = %d, want payload length %d", e.Len, c.len_)
			}
		})
	}
}

func TestSniffRejectsCorrupt(t *testing.T) {
	pkt := mkALFData(3, 77, 0, 64)
	pkt[5] ^= 0xFF // damage the name; header checksum must catch it
	var e Event
	if got := sniffInto(&e, pkt); got != refNone {
		t.Fatalf("corrupt ALF header sniffed as %d, want refNone", got)
	}
	seg := mkOTP(1, 2, 100, make([]byte, 50))
	seg[20] ^= 0xFF
	if got := sniffInto(&e, seg); got != refNone {
		t.Fatalf("corrupt OTP segment sniffed as %d, want refNone", got)
	}
}

// TestNilTracer drives every recording and query method on a nil
// tracer: nothing may panic, and exports must still produce valid
// empty output.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.SetLimit(10)
	tr.ADUSubmitted(0, 1, 2, 3)
	tr.FragmentSent(0, 1, 0, 10, false, false, 0)
	tr.HeartbeatSent(0, 1)
	tr.FragmentReceived(0, 1, 0, 10, false)
	tr.ADUChecksumFailed(0, 1)
	tr.ADUDelivered(0, 1, 10)
	tr.ADULost(0, 1)
	tr.ADUExpired(0, 1)
	tr.NacksSent(0, []uint64{1, 2})
	tr.MessageSubmitted(0, 0, 0, 10)
	tr.SegmentSent(0, 0, 10, false)
	tr.SegmentBuffered(0, 0, 10)
	tr.SegmentDelivered(0, 0, 10)
	tr.StallOpened(0, 0)
	tr.StallClosed(0, time.Millisecond)
	tr.PacketQueued("l", nil, 0, 0)
	tr.PacketDelivered("l", nil, 0)
	tr.PacketDropped("l", "down", nil)
	if f := tr.FaultBegan("blackout", []string{"l"}); f != 0 {
		t.Errorf("nil FaultBegan = %d, want 0", f)
	}
	tr.FaultEnded(0)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Errorf("nil tracer holds events")
	}
	rep := tr.Analyze()
	if len(rep.ADUs) != 0 || len(rep.Msgs) != 0 {
		t.Errorf("nil Analyze not empty")
	}
	if err := tr.WritePerfetto(io.Discard); err != nil {
		t.Errorf("nil WritePerfetto: %v", err)
	}
}

func TestLimit(t *testing.T) {
	s := sim.NewScheduler()
	tr := New(s)
	tr.SetLimit(3)
	for i := 0; i < 10; i++ {
		tr.ADUSubmitted(0, uint64(i), 0, 1)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped != 7 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped)
	}
}

// TestNackFlow checks the NACK → retransmission → arrival causal
// chain: all three events must share one non-zero flow id, and the
// flow must be consumed by the arrival.
func TestNackFlow(t *testing.T) {
	s := sim.NewScheduler()
	tr := New(s)
	tr.NacksSent(1, []uint64{7})
	tr.FragmentSent(1, 7, 0, 100, true, false, 0) // retransmission
	tr.FragmentReceived(1, 7, 0, 100, false)

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("recorded %d events, want 3", len(ev))
	}
	flow := ev[0].Flow
	if flow == 0 {
		t.Fatal("NackTX has no flow id")
	}
	if ev[1].Kind != FragRetx || ev[1].Flow != flow {
		t.Errorf("retx event = %v flow %d, want FragRetx flow %d", ev[1].Kind, ev[1].Flow, flow)
	}
	if ev[2].Flow != flow {
		t.Errorf("arrival flow = %d, want %d", ev[2].Flow, flow)
	}
	// Flow consumed: a later unrelated arrival must not reuse it.
	tr.FragmentReceived(1, 7, 0, 100, false)
	if got := tr.Events()[3].Flow; got != 0 {
		t.Errorf("second arrival flow = %d, want 0 (consumed)", got)
	}
}

// TestDropStallFaultFlow checks the fault window → drop → stall chain:
// a down-drop of an OTP data segment inside a fault window carries the
// window's flow, and the stall blocked on the dropped range inherits
// it.
func TestDropStallFaultFlow(t *testing.T) {
	s := sim.NewScheduler()
	tr := New(s)
	flow := tr.FaultBegan("blackout", []string{"net/a->b/0"})
	if flow == 0 {
		t.Fatal("FaultBegan returned 0")
	}
	seg := mkOTP(1, 2, 5000, make([]byte, 1000))
	tr.PacketDropped("net/a->b/0", "down", seg)
	tr.FaultEnded(flow)
	tr.StallOpened(2, 5000) // receiver blocked exactly at the lost range

	var drop, stall *Event
	for i := range tr.Events() {
		e := &tr.Events()[i]
		switch e.Kind {
		case NetDrop:
			drop = e
		case StallOpen:
			stall = e
		}
	}
	if drop == nil || drop.Flow != flow {
		t.Fatalf("drop flow = %v, want fault flow %d", drop, flow)
	}
	if drop.Proto != ProtoOTPData || drop.Off != 5000 || drop.Len != 1000 {
		t.Errorf("drop sniffed as %q [%d,+%d)", drop.Proto, drop.Off, drop.Len)
	}
	if stall == nil || stall.Flow != flow {
		t.Fatalf("stall flow = %v, want fault flow %d", stall, flow)
	}
	// A stall blocked outside any remembered range carries no flow.
	tr.PacketDropped("net/a->b/0", "line", mkOTP(1, 2, 9000, make([]byte, 100)))
	tr.StallOpened(2, 20000)
	last := tr.Events()[len(tr.Events())-1]
	if last.Flow != 0 {
		t.Errorf("unrelated stall flow = %d, want 0", last.Flow)
	}
}

// TestAnalyzeALF replays a hand-built ALF lifecycle with known virtual
// times and checks the reconstructed attribution.
func TestAnalyzeALF(t *testing.T) {
	s := sim.NewScheduler()
	tr := New(s)
	at := func(d sim.Duration, fn func()) { s.At(sim.Time(0).Add(d), fn) }

	// submit at 0, first tx at 1ms, arrival 5ms, nack 20ms,
	// retx arrival 30ms, delivered 31ms.
	at(0, func() { tr.ADUSubmitted(0, 1, 99, 2000) })
	at(1*time.Millisecond, func() {
		tr.FragmentSent(0, 1, 0, 1000, false, false, time.Millisecond)
		tr.FragmentSent(0, 1, 1000, 1000, false, false, time.Millisecond)
	})
	at(5*time.Millisecond, func() { tr.FragmentReceived(0, 1, 0, 1000, false) })
	at(20*time.Millisecond, func() { tr.NacksSent(0, []uint64{1}) })
	at(25*time.Millisecond, func() { tr.FragmentSent(0, 1, 1000, 1000, true, false, 0) })
	at(30*time.Millisecond, func() { tr.FragmentReceived(0, 1, 1000, 1000, false) })
	at(31*time.Millisecond, func() { tr.ADUDelivered(0, 1, 2000) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	a := tr.Analyze().ADU(0, 1)
	if a == nil {
		t.Fatal("ADU (0,1) not reconstructed")
	}
	if a.Outcome != "delivered" || a.Tag != 99 || a.Size != 2000 {
		t.Errorf("outcome=%q tag=%d size=%d", a.Outcome, a.Tag, a.Size)
	}
	if a.Frags != 2 || a.Retx != 1 || a.Nacks != 1 {
		t.Errorf("frags=%d retx=%d nacks=%d, want 2/1/1", a.Frags, a.Retx, a.Nacks)
	}
	want := Attribution{
		SenderPace:     time.Millisecond,      // 0 → 1ms
		NetTransit:     4 * time.Millisecond,  // 1 → 5ms
		RetransmitWait: 10 * time.Millisecond, // nack 20 → arrival 30ms
		Reassembly:     16 * time.Millisecond, // (31-5) - 10
		Total:          31 * time.Millisecond,
	}
	if a.Attr != want {
		t.Errorf("attribution = %+v, want %+v", a.Attr, want)
	}
	if sum := a.Attr.SenderPace + a.Attr.NetTransit + a.Attr.RetransmitWait +
		a.Attr.Reassembly + a.Attr.HOLStall; sum != a.Attr.Total {
		t.Errorf("phases sum to %v, Total %v", sum, a.Attr.Total)
	}
}

// TestAnalyzeOTP replays an OTP message sequence with one gap and
// checks HOL-stall attribution: the message behind the gap pays
// RetransmitWait, the ones after it pay HOLStall.
func TestAnalyzeOTP(t *testing.T) {
	s := sim.NewScheduler()
	tr := New(s)
	at := func(d sim.Duration, fn func()) { s.At(sim.Time(0).Add(d), fn) }

	// msgs 0,1,2 of 1000 B each; segment 1 is lost and recovered late.
	at(0, func() {
		tr.MessageSubmitted(0, 0, 0, 1000)
		tr.SegmentSent(0, 0, 1000, false)
	})
	at(1*time.Millisecond, func() {
		tr.MessageSubmitted(0, 1, 1000, 1000)
		tr.SegmentSent(0, 1000, 1000, false) // lost on the wire
	})
	at(2*time.Millisecond, func() {
		tr.MessageSubmitted(0, 2, 2000, 1000)
		tr.SegmentSent(0, 2000, 1000, false)
	})
	at(5*time.Millisecond, func() { tr.SegmentDelivered(0, 0, 1000) })
	at(7*time.Millisecond, func() {
		tr.SegmentBuffered(0, 2000, 1000) // msg 2 arrives out of order
		tr.StallOpened(0, 1000)
	})
	at(40*time.Millisecond, func() { tr.SegmentSent(0, 1000, 1000, true) })
	at(45*time.Millisecond, func() {
		tr.StallClosed(0, 38*time.Millisecond)
		tr.SegmentDelivered(0, 1000, 2000) // delivery drains through msg 2
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	rep := tr.Analyze()
	m1 := rep.Msg(0, 1)
	m2 := rep.Msg(0, 2)
	if m1 == nil || m2 == nil {
		t.Fatal("messages not reconstructed")
	}
	if m1.Outcome != "delivered" || m2.Outcome != "delivered" {
		t.Fatalf("outcomes %q %q", m1.Outcome, m2.Outcome)
	}
	if m1.Retx != 1 {
		t.Errorf("msg1 retx = %d, want 1", m1.Retx)
	}
	// msg 1: first (only) arrival at 45ms is also full coverage — no
	// stall, its wait is all RetransmitWait.
	if m1.Attr.HOLStall != 0 {
		t.Errorf("msg1 HOLStall = %v, want 0", m1.Attr.HOLStall)
	}
	// msg 2: all bytes arrived at 7ms, deliverable only at 45ms.
	if want := 38 * time.Millisecond; m2.Attr.HOLStall != want {
		t.Errorf("msg2 HOLStall = %v, want %v", m2.Attr.HOLStall, want)
	}
	if len(rep.Stalls) != 1 {
		t.Fatalf("stalls = %d, want 1", len(rep.Stalls))
	}
	st := rep.Stalls[0]
	if st.Begin != sim.Time(0).Add(7*time.Millisecond) || st.End != sim.Time(0).Add(45*time.Millisecond) {
		t.Errorf("stall [%v, %v]", st.Begin, st.End)
	}
}

func TestKindStrings(t *testing.T) {
	for k := ADUSubmit; k <= FaultEnd; k++ {
		if s := k.String(); s == "" || s[:4] == "kind" {
			t.Errorf("Kind %d has no name (%q)", k, s)
		}
	}
	if s := Kind(200).String(); s != "kind-200" {
		t.Errorf("unknown kind = %q", s)
	}
}
