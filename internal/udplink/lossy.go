package udplink

import (
	"net"
	"sync"
)

// LossyConn wraps a net.PacketConn and drops outgoing datagrams
// deterministically: an xorshift64* stream seeded explicitly decides
// each WriteTo, so a soak run's drop pattern is reproducible
// regardless of goroutine timing (drops on the send side commit before
// the kernel introduces any nondeterminism). DropNth, when positive,
// additionally drops every Nth datagram exactly — useful for FEC tests
// that need a precise loss shape.
type LossyConn struct {
	net.PacketConn
	mu      sync.Mutex
	state   uint64
	prob    float64
	nth     int
	count   int
	dropped int64
}

// NewLossyConn wraps conn with independent drop probability prob
// (0..1) under the given seed. Zero prob passes everything (use
// SetDropNth for exact patterns).
func NewLossyConn(conn net.PacketConn, prob float64, seed uint64) *LossyConn {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &LossyConn{PacketConn: conn, prob: prob, state: seed}
}

// SetDropNth makes every nth outgoing datagram (1-based counting)
// disappear, in addition to probabilistic drops. Zero disables.
func (c *LossyConn) SetDropNth(n int) {
	c.mu.Lock()
	c.nth = n
	c.mu.Unlock()
}

// Dropped returns how many datagrams were eaten.
func (c *LossyConn) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// WriteTo drops or forwards. A dropped datagram reports success — the
// wire ate it, as far as the sender can tell.
func (c *LossyConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	c.count++
	drop := c.nth > 0 && c.count%c.nth == 0
	if !drop && c.prob > 0 {
		c.state ^= c.state >> 12
		c.state ^= c.state << 25
		c.state ^= c.state >> 27
		r := float64(c.state*0x2545F4914F6CDD1D>>11) / (1 << 53)
		drop = r < c.prob
	}
	if drop {
		c.dropped++
	}
	c.mu.Unlock()
	if drop {
		return len(p), nil
	}
	return c.PacketConn.WriteTo(p, addr)
}
