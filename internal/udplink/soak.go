package udplink

import (
	"bytes"
	"fmt"
	"net"
	"time"

	"repro/internal/buf"
	alf "repro/internal/core"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// SoakConfig parameterizes a real-UDP loopback soak: the same
// exactly-once / integrity / drain invariants internal/faults/soak
// checks on the simulator, asserted off-simulator against kernel
// sockets, wall-clock timers, and deterministic send-side drops.
// Zero fields take defaults.
type SoakConfig struct {
	// ADUs and ADUBytes shape the workload (defaults 200 x 3000 B).
	ADUs     int
	ADUBytes int
	// LossProb drops data-plane datagrams on the send side (default
	// 0.05; the control plane stays clean so the run bounds cleanly).
	LossProb float64
	// Seed drives the drop stream (default 1).
	Seed uint64
	// Suite selects the cipher plane (default alf.SuiteAEAD — the soak
	// doubles as the fused-crypto-over-real-sockets check).
	Suite alf.CipherSuite
	// FECGroup enables sender FEC (default 0).
	FECGroup int
	// SubmitEvery is the virtual-timer submission period (default
	// 2 ms; also the pacing the soak applies to the socket).
	SubmitEvery time.Duration
	// Timeout bounds the wall-clock run (default 60 s).
	Timeout time.Duration
}

func (c *SoakConfig) fill() {
	if c.ADUs == 0 {
		c.ADUs = 200
	}
	if c.ADUBytes == 0 {
		c.ADUBytes = 3000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Suite == alf.SuiteAuto {
		c.Suite = alf.SuiteAEAD
	}
	if c.SubmitEvery == 0 {
		c.SubmitEvery = 2 * time.Millisecond
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
}

// SoakResult reports what a soak run observed. Violated invariants
// surface as the error from RunSoak, not here.
type SoakResult struct {
	Delivered int64
	Lost      int64
	Duplicate int64
	Corrupt   int64
	WireDrops int64 // datagrams eaten by the lossy conn
	Resent    int64 // sender whole-ADU retransmissions
	AuthFails int64 // receiver tag rejections (expect 0: drops, not damage)
	Elapsed   time.Duration
}

// soakPayload builds the deterministic payload for one ADU name.
func soakPayload(name uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(uint64(i)*7 + name*131 + 5)
	}
	return b
}

// RunSoak transfers a workload across a pair of real loopback UDP
// sockets — data plane through a deterministic drop wrapper — and
// checks the soak invariants:
//
//   - every submitted ADU is delivered exactly once (SenderBuffered
//     recovery heals all drops; none may be lost or duplicated),
//   - every delivered payload is byte-identical to what was submitted,
//   - after delivery the receiver has fully drained (no partials, no
//     tracked gaps) and the sender retains nothing.
//
// It returns counters for reporting; any violated invariant is an
// error.
func RunSoak(cfg SoakConfig) (SoakResult, error) {
	cfg.fill()
	var res SoakResult

	connA, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer connA.Close()
	connB, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer connB.Close()
	lossy := NewLossyConn(connA, cfg.LossProb, cfg.Seed)

	sched := sim.NewScheduler()
	clk := NewClock(sched, Config{Pool: buf.NewPool()})
	dataLink := clk.NewLink(lossy, connB.LocalAddr())
	ctrlLink := clk.NewLink(connB, connA.LocalAddr())

	acfg := alf.Config{
		Policy:       alf.SenderBuffered,
		Suite:        cfg.Suite,
		FECGroup:     cfg.FECGroup,
		NackDelay:    10 * time.Millisecond,
		NackInterval: 10 * time.Millisecond,
	}
	if cfg.Suite != alf.SuiteNone {
		acfg.Key = 0xDEFACED0 + uint64(cfg.Seed)
	}
	snd, err := alf.NewSender(sched, dataLink.Send, acfg)
	if err != nil {
		return res, err
	}
	snd.SendRef = dataLink.SendRef
	rcv, err := alf.NewReceiver(sched, ctrlLink.Send, acfg)
	if err != nil {
		return res, err
	}
	ctrlLink.SetHandler(func(p []byte) { _ = rcv.HandlePacket(p) })
	dataLink.SetHandler(func(p []byte) { _ = snd.HandleControl(p) })

	seen := make(map[uint64]int, cfg.ADUs)
	rcv.OnADU = func(a alf.ADU) {
		seen[a.Tag]++
		if seen[a.Tag] > 1 {
			res.Duplicate++
		}
		if !bytes.Equal(a.Data, soakPayload(a.Tag, cfg.ADUBytes)) {
			res.Corrupt++
		}
		res.Delivered++
		a.Release()
	}
	rcv.OnLost = func(name uint64) { res.Lost++ }

	submitted := 0
	sched.Every(cfg.SubmitEvery, func() bool {
		if submitted >= cfg.ADUs {
			return false
		}
		name := uint64(submitted)
		if _, err := snd.Send(name, xcode.SyntaxRaw, soakPayload(name, cfg.ADUBytes)); err == nil {
			submitted++
		}
		return submitted < cfg.ADUs
	})

	start := time.Now()
	timedOut := false
	clk.Run(func() bool {
		if time.Since(start) > cfg.Timeout {
			timedOut = true
			return true
		}
		return submitted == cfg.ADUs &&
			res.Delivered+res.Lost >= int64(cfg.ADUs) &&
			rcv.Pending() == 0 && rcv.Missing() == 0 &&
			snd.BufferedADUs() == 0
	})
	clk.Stop()
	res.Elapsed = time.Since(start)
	res.WireDrops = lossy.Dropped()
	res.Resent = snd.Stats.ResentADUs
	res.AuthFails = rcv.Stats.AuthFails

	switch {
	case timedOut:
		return res, fmt.Errorf("udplink soak: timeout after %v (delivered %d/%d, pending %d, missing %d, drops %d)",
			cfg.Timeout, res.Delivered, cfg.ADUs, rcv.Pending(), rcv.Missing(), res.WireDrops)
	case res.Lost != 0:
		return res, fmt.Errorf("udplink soak: %d ADUs lost under SenderBuffered recovery", res.Lost)
	case res.Duplicate != 0:
		return res, fmt.Errorf("udplink soak: %d duplicate deliveries", res.Duplicate)
	case res.Corrupt != 0:
		return res, fmt.Errorf("udplink soak: %d corrupted deliveries", res.Corrupt)
	case res.Delivered != int64(cfg.ADUs):
		return res, fmt.Errorf("udplink soak: delivered %d of %d", res.Delivered, cfg.ADUs)
	case res.AuthFails != 0:
		return res, fmt.Errorf("udplink soak: %d tag failures on a drop-only path", res.AuthFails)
	}
	return res, nil
}
