// Package udplink binds the ALF stack to real UDP sockets: the same
// Sender/Receiver endpoints that run over netsim run unmodified over
// the kernel network stack, which is the point — the protocol
// architecture was never simulator-shaped.
//
// Three things bridge the two worlds:
//
//   - Link wraps a net.PacketConn with the netsim.Link send contract
//     (Send for copied control frames, SendRef for pooled refcounted
//     wire packets), pooled receive buffers from internal/buf, and
//     batched I/O: sends queue and flush once per event-loop pass, and
//     the reader drains the socket in bursts after each blocking
//     receive (an immediate-deadline fallback loop standing in for
//     recvmmsg-style batching, with no build tags or extra
//     dependencies).
//   - Clock drives an unmodified *sim.Scheduler against the wall
//     clock: virtual time is wall time since Run started, due timers
//     fire on the loop goroutine, and the loop sleeps exactly until
//     the scheduler's next deadline (sim.Scheduler.NextAt) or the next
//     datagram, whichever comes first.
//   - Everything protocol-visible stays single-threaded: handlers,
//     timers, and sends all run on the Clock's loop goroutine, the
//     same discipline the simulator enforces, so the endpoints need no
//     locks. Reader goroutines only move pooled buffers into the
//     loop's inbox (the pool and refcounts are concurrency-safe).
package udplink

import (
	"errors"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/buf"
	"repro/internal/sim"
)

// Config parameterizes a Clock. Zero fields take defaults.
type Config struct {
	// MTU is the largest datagram the readers accept (default 2048).
	MTU int
	// Batch bounds how many datagrams one reader wakeup drains and how
	// many queued sends one flush writes (default 32). The first read
	// of a burst blocks; the rest use an immediate deadline, so one
	// blocking syscall amortizes over up to Batch arrivals.
	Batch int
	// Inbox is the arrival channel depth shared by all links
	// (default 512). A full inbox applies backpressure to readers.
	Inbox int
	// MaxIdle caps how long the loop sleeps when the scheduler is idle
	// and no datagrams arrive (default 50 ms).
	MaxIdle time.Duration
	// Pool supplies receive buffers (default buf.Default, shared with
	// the endpoints so the recycling loop closes across the socket
	// boundary too).
	Pool *buf.Pool
}

func (c *Config) fill() {
	if c.MTU == 0 {
		c.MTU = 2048
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.Inbox == 0 {
		c.Inbox = 512
	}
	if c.MaxIdle == 0 {
		c.MaxIdle = 50 * time.Millisecond
	}
	if c.Pool == nil {
		c.Pool = buf.Default
	}
}

// arrival is one received datagram in flight from a reader goroutine
// to the loop.
type arrival struct {
	link *Link
	ref  *buf.Ref
	n    int
}

// Clock runs a virtual-time scheduler against the wall clock and
// dispatches socket arrivals into it. Create with NewClock, add links,
// then Run on one goroutine.
type Clock struct {
	sched *sim.Scheduler
	cfg   Config
	inbox chan arrival
	links []*Link
	stopc chan struct{}
	start time.Time
}

// NewClock wraps sched for real-time execution.
func NewClock(sched *sim.Scheduler, cfg Config) *Clock {
	cfg.fill()
	return &Clock{
		sched: sched,
		cfg:   cfg,
		inbox: make(chan arrival, cfg.Inbox),
		stopc: make(chan struct{}),
	}
}

// Scheduler returns the wrapped scheduler.
func (c *Clock) Scheduler() *sim.Scheduler { return c.sched }

// NewLink attaches a socket. Datagrams sent via the link go to peer;
// arriving datagrams (from anyone) are handed to the link's handler on
// the loop goroutine. The reader goroutine starts immediately; the
// caller still owns closing conn (which stops the reader).
func (c *Clock) NewLink(conn net.PacketConn, peer net.Addr) *Link {
	l := &Link{clk: c, conn: conn, peer: peer}
	c.links = append(c.links, l)
	go l.readLoop()
	return l
}

// Stop makes Run return after the current pass. Safe from any
// goroutine, once.
func (c *Clock) Stop() { close(c.stopc) }

// now maps wall time onto the scheduler's virtual timeline.
func (c *Clock) now() sim.Time { return sim.Time(time.Since(c.start)) }

// Run executes the loop until Stop is called or done (if non-nil)
// returns true. Virtual time zero is the moment Run starts, so timers
// armed before Run fire the right wall delay after it.
func (c *Clock) Run(done func() bool) {
	c.start = time.Now()
	idle := time.NewTimer(time.Hour)
	defer idle.Stop()
	for {
		now := c.now()
		_ = c.sched.RunUntil(now)
		c.flushAll()
		if done != nil && done() {
			return
		}
		// Sleep until the next scheduled event or the idle cap,
		// interrupted by any arrival.
		wait := c.cfg.MaxIdle
		if at, ok := c.sched.NextAt(); ok {
			if w := time.Duration(at - now); w < wait {
				wait = w
			}
			if wait < 0 {
				wait = 0
			}
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(wait)
		select {
		case a := <-c.inbox:
			// Advance the clock to the arrival's wall moment before the
			// handler runs, so timers it arms measure from now, then
			// drain the burst — one wakeup, many packets.
			_ = c.sched.RunUntil(c.now())
			c.dispatch(a)
			for len(c.inbox) > 0 {
				c.dispatch(<-c.inbox)
			}
		case <-idle.C:
		case <-c.stopc:
			return
		}
	}
}

// dispatch hands one datagram to its link's handler and recycles the
// buffer.
func (c *Clock) dispatch(a arrival) {
	a.link.recvd.Add(1)
	if h := a.link.handler; h != nil {
		h(a.ref.Bytes()[:a.n])
	}
	a.ref.Release()
}

// flushAll writes every link's queued sends.
func (c *Clock) flushAll() {
	for _, l := range c.links {
		l.flush()
	}
}

// Link is one direction-agnostic UDP attachment: sends go to the
// configured peer, receives come from the socket. It implements the
// same contract as netsim.Link (Send copies, SendRef consumes the
// caller's reference), so alf.Sender.SendRef and the control channels
// plug in unchanged.
type Link struct {
	clk     *Clock
	conn    net.PacketConn
	peer    net.Addr
	handler func([]byte)

	// out is the batched send queue, owned by the loop goroutine: the
	// endpoints send from timer callbacks and handlers (both on the
	// loop), and the queue flushes once per pass.
	out []*buf.Ref

	sent     atomic.Int64
	recvd    atomic.Int64
	dropped  atomic.Int64 // reader drops: oversized or inbox full
	sendErrs atomic.Int64
}

// SetHandler installs the arrival handler (runs on the loop
// goroutine). The slice is only valid during the call.
func (l *Link) SetHandler(h func([]byte)) { l.handler = h }

// Sent, Recvd, Dropped, SendErrs report link counters.
func (l *Link) Sent() int64     { return l.sent.Load() }
func (l *Link) Recvd() int64    { return l.recvd.Load() }
func (l *Link) Dropped() int64  { return l.dropped.Load() }
func (l *Link) SendErrs() int64 { return l.sendErrs.Load() }

// Send queues one datagram, copying p into a pooled buffer (the caller
// may reuse p immediately — the contract control-plane senders
// expect). Must be called on the loop goroutine.
func (l *Link) Send(p []byte) error {
	ref := l.clk.cfg.Pool.Get(len(p))
	copy(ref.Bytes(), p)
	l.out = append(l.out, ref)
	return nil
}

// SendRef queues one datagram, consuming the caller's reference — the
// zero-copy path alf.Sender.SendRef uses. Must be called on the loop
// goroutine.
func (l *Link) SendRef(ref *buf.Ref) error {
	l.out = append(l.out, ref)
	return nil
}

// flush writes the queued datagrams. One flush per loop pass batches
// everything the endpoints emitted during that pass (a paced burst, a
// whole ADU's fragments) into back-to-back writes.
func (l *Link) flush() {
	for i, ref := range l.out {
		if _, err := l.conn.WriteTo(ref.Bytes(), l.peer); err != nil {
			l.sendErrs.Add(1)
		} else {
			l.sent.Add(1)
		}
		ref.Release()
		l.out[i] = nil
	}
	l.out = l.out[:0]
}

// readLoop is the per-socket reader: one blocking receive, then an
// immediate-deadline drain of whatever else the socket already holds,
// up to the batch bound — the portable stand-in for recvmmsg. Exits
// when the socket closes.
func (l *Link) readLoop() {
	batch := l.clk.cfg.Batch
	for {
		ref := l.clk.cfg.Pool.Get(l.clk.cfg.MTU)
		n, _, err := l.conn.ReadFrom(ref.Bytes())
		if err != nil {
			ref.Release()
			if isClosed(err) {
				return
			}
			continue
		}
		if !l.deliver(ref, n) {
			return
		}
		// Burst drain: anything already queued in the socket buffer is
		// taken with a zero deadline, so a burst of k datagrams costs
		// one blocking wait, not k.
		drained := 1
		for drained < batch {
			if err := l.conn.SetReadDeadline(time.Now()); err != nil {
				break
			}
			ref := l.clk.cfg.Pool.Get(l.clk.cfg.MTU)
			n, _, err := l.conn.ReadFrom(ref.Bytes())
			if err != nil {
				ref.Release()
				if isClosed(err) {
					return
				}
				break // deadline: socket empty
			}
			if !l.deliver(ref, n) {
				return
			}
			drained++
		}
		if err := l.conn.SetReadDeadline(time.Time{}); err != nil {
			return
		}
	}
}

// deliver hands one received datagram to the loop. It reports false
// only when the clock has stopped (time to exit the reader).
func (l *Link) deliver(ref *buf.Ref, n int) bool {
	select {
	case l.clk.inbox <- arrival{link: l, ref: ref, n: n}:
		return true
	case <-l.clk.stopc:
		ref.Release()
		return false
	}
}

// isClosed reports whether a socket error means the conn is gone (as
// opposed to a read deadline or a transient ICMP-induced error).
func isClosed(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	// Unknown persistent errors: keep the reader alive; UDP sockets
	// surface transient errors (e.g. connection-refused from ICMP)
	// that clear on their own.
	return false
}
