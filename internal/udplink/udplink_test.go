package udplink

import (
	"net"
	"testing"
	"time"

	"repro/internal/buf"
	alf "repro/internal/core"
	"repro/internal/sim"
)

// echoPair wires two loopback sockets into one Clock and returns the
// links (a sends to b's address and vice versa).
func echoPair(t testing.TB, clk *Clock) (*Link, *Link, func()) {
	t.Helper()
	ca, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	la := clk.NewLink(ca, cb.LocalAddr())
	lb := clk.NewLink(cb, ca.LocalAddr())
	return la, lb, func() { ca.Close(); cb.Close() }
}

// TestLinkRoundTrip pushes datagrams both ways through real sockets and
// checks they arrive intact on the loop goroutine.
func TestLinkRoundTrip(t *testing.T) {
	sched := sim.NewScheduler()
	clk := NewClock(sched, Config{Pool: buf.NewPool()})
	la, lb, closeConns := echoPair(t, clk)
	defer closeConns()

	const n = 50
	gotA, gotB := 0, 0
	la.SetHandler(func(p []byte) {
		if len(p) != 3 || p[0] != 'b' {
			t.Errorf("link a got %q", p)
		}
		gotA++
	})
	lb.SetHandler(func(p []byte) {
		if len(p) != 3 || p[0] != 'a' {
			t.Errorf("link b got %q", p)
		}
		gotB++
	})
	sent := 0
	sched.Every(100*time.Microsecond, func() bool {
		_ = la.Send([]byte{'a', byte(sent), byte(sent >> 8)})
		_ = lb.Send([]byte{'b', byte(sent), byte(sent >> 8)})
		sent++
		return sent < n
	})
	start := time.Now()
	clk.Run(func() bool {
		if time.Since(start) > 20*time.Second {
			t.Fatal("round trip timed out")
		}
		return gotA == n && gotB == n
	})
	clk.Stop()
	if la.Sent() != n || lb.Sent() != n {
		t.Errorf("sent counters a=%d b=%d, want %d", la.Sent(), lb.Sent(), n)
	}
	if la.Recvd() != n || lb.Recvd() != n {
		t.Errorf("recvd counters a=%d b=%d, want %d", la.Recvd(), lb.Recvd(), n)
	}
}

// TestLinkSendRefConsumes checks the zero-copy send path recycles the
// caller's reference after the datagram is written.
func TestLinkSendRefConsumes(t *testing.T) {
	pool := buf.NewPool()
	sched := sim.NewScheduler()
	clk := NewClock(sched, Config{Pool: pool})
	la, lb, closeConns := echoPair(t, clk)
	defer closeConns()

	got := 0
	lb.SetHandler(func(p []byte) {
		if len(p) != 100 || p[7] != 42 {
			t.Errorf("bad payload: len %d", len(p))
		}
		got++
	})
	sched.After(0, func() {
		ref := pool.Get(100)
		ref.Bytes()[7] = 42
		_ = la.SendRef(ref)
	})
	start := time.Now()
	clk.Run(func() bool {
		if time.Since(start) > 10*time.Second {
			t.Fatal("SendRef delivery timed out")
		}
		return got == 1
	})
	clk.Stop()
}

// TestLossyConnDeterministic checks the drop stream is a pure function
// of the seed, and that DropNth drops exactly the right datagrams.
func TestLossyConnDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		inner, err := net.ListenPacket("udp4", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer inner.Close()
		lc := NewLossyConn(inner, 0.3, seed)
		pattern := make([]bool, 200)
		before := int64(0)
		for i := range pattern {
			_, _ = lc.WriteTo([]byte{1}, inner.LocalAddr())
			pattern[i] = lc.Dropped() > before
			before = lc.Dropped()
		}
		return pattern
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at datagram %d", i)
		}
	}
	if run(7)[0] == true && run(8)[0] == true && run(9)[0] == true {
		// Not a correctness property, but three seeds all dropping the
		// first datagram at p=0.3 would suggest a broken generator.
		t.Error("suspicious: every seed drops datagram 0")
	}

	inner, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	lc := NewLossyConn(inner, 0, 1)
	lc.SetDropNth(3)
	for i := 1; i <= 9; i++ {
		_, _ = lc.WriteTo([]byte{1}, inner.LocalAddr())
	}
	if got := lc.Dropped(); got != 3 {
		t.Errorf("DropNth(3) over 9 writes dropped %d, want 3", got)
	}
}

// TestUDPTransferAEAD moves authenticated ADUs across real sockets with
// no loss: the fused crypto datapath end to end over the kernel.
func TestUDPTransferAEAD(t *testing.T) {
	res, err := RunSoak(SoakConfig{
		ADUs:        50,
		ADUBytes:    4096,
		LossProb:    0,
		Suite:       alf.SuiteAEAD,
		SubmitEvery: 500 * time.Microsecond,
		Timeout:     30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 50 || res.Resent != 0 {
		t.Errorf("delivered %d resent %d, want 50/0", res.Delivered, res.Resent)
	}
}

// TestUDPSoakLossy is the headline invariant check: 5% deterministic
// send-side drops, SenderBuffered recovery, AEAD on. Exactly-once,
// byte-intact, fully drained.
func TestUDPSoakLossy(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback soak in -short mode")
	}
	res, err := RunSoak(SoakConfig{
		ADUs:     150,
		ADUBytes: 3000,
		LossProb: 0.05,
		Seed:     1,
		Suite:    alf.SuiteAEAD,
		Timeout:  45 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d ADUs in %v, %d wire drops, %d resends, elapsed %v",
		res.Delivered, res.Elapsed.Round(time.Millisecond), res.WireDrops, res.Resent, res.Elapsed)
	if res.WireDrops == 0 {
		t.Error("lossy conn dropped nothing; soak did not exercise recovery")
	}
	if res.Resent == 0 {
		t.Error("no retransmissions despite drops")
	}
}

// TestUDPSoakFEC repeats the soak with sender FEC and an exact
// every-8th drop pattern, so most losses repair forward without NACKs.
func TestUDPSoakFEC(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback soak in -short mode")
	}
	res, err := RunSoak(SoakConfig{
		ADUs:     100,
		ADUBytes: 3000,
		LossProb: 0.03,
		Seed:     2,
		Suite:    alf.SuiteAEAD,
		FECGroup: 4,
		Timeout:  45 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WireDrops == 0 {
		t.Error("lossy conn dropped nothing; soak did not exercise FEC")
	}
}

// TestUDPSoakScramble runs the legacy suite over real sockets, so both
// cipher planes are exercised off-simulator.
func TestUDPSoakScramble(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback soak in -short mode")
	}
	if _, err := RunSoak(SoakConfig{
		ADUs:     60,
		ADUBytes: 2000,
		LossProb: 0.04,
		Seed:     3,
		Suite:    alf.SuiteScramble,
		Timeout:  45 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkUDPLoopback measures goodput of the full AEAD datapath over
// kernel loopback sockets: fragment+encrypt+tag, real sendto/recvfrom,
// verify+decrypt+reassemble.
func BenchmarkUDPLoopback(b *testing.B) {
	const aduBytes = 8192
	res, err := RunSoak(SoakConfig{
		ADUs:        b.N,
		ADUBytes:    aduBytes,
		Suite:       alf.SuiteAEAD,
		SubmitEvery: 100 * time.Microsecond,
		Timeout:     10 * time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(aduBytes)
	b.ReportMetric(float64(res.Delivered)/res.Elapsed.Seconds(), "ADUs/s")
	// The soak clock is wall time; report its elapsed as the benchmark
	// duration so ns/op and MB/s reflect the transfer, not setup.
	b.ReportMetric(res.Elapsed.Seconds()*1e9/float64(b.N), "wall-ns/op")
}
