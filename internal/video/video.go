// Package video is the paper's stream-data application (§5): each ADU
// is identified "with its location, both in space (where on the screen
// it goes) and in time (which video frame it is a part of)". Frames are
// split into slice ADUs named (frame, slice) through the ADU tag; the
// sink renders each frame at its playout deadline with whatever slices
// have arrived, and the source never retransmits (the NoRetransmit
// policy): late repair is useless to a real-time display.
package video

import (
	"fmt"
	"time"

	alf "repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xcode"
)

// Tag packs a (frame, slice) pair into an ADU tag: the application
// name-space of the video stream.
func Tag(frame uint32, slice uint16) uint64 {
	return uint64(frame)<<16 | uint64(slice)
}

// SplitTag unpacks a video ADU tag.
func SplitTag(tag uint64) (frame uint32, slice uint16) {
	return uint32(tag >> 16), uint16(tag)
}

// SourceConfig parameterizes a synthetic video source.
type SourceConfig struct {
	// FPS is the frame rate (default 30).
	FPS float64
	// SlicesPerFrame is the number of ADUs per frame (default 8).
	SlicesPerFrame int
	// SliceBytes is the payload size of each slice ADU (default 1400).
	SliceBytes int
}

func (c *SourceConfig) fill() {
	if c.FPS == 0 {
		c.FPS = 30
	}
	if c.SlicesPerFrame == 0 {
		c.SlicesPerFrame = 8
	}
	if c.SliceBytes == 0 {
		c.SliceBytes = 1400
	}
}

// Period returns the inter-frame interval.
func (c SourceConfig) Period() sim.Duration {
	return sim.Duration(float64(time.Second) / c.FPS)
}

// Source emits synthetic frames on schedule over an ALF sender.
type Source struct {
	cfg   SourceConfig
	sched *sim.Scheduler
	snd   *alf.Sender

	frame   uint32
	limit   uint32
	started bool
	// FramesSent counts frames emitted.
	FramesSent int64
	// SendErrors counts slices the transport refused.
	SendErrors int64
}

// NewSource creates a video source bound to an ALF sender (the stream
// should use the NoRetransmit policy and a HoldTime near the playout
// delay, though the source works with any policy).
func NewSource(sched *sim.Scheduler, snd *alf.Sender, cfg SourceConfig) *Source {
	cfg.fill()
	return &Source{cfg: cfg, sched: sched, snd: snd}
}

// Config returns the effective configuration.
func (s *Source) Config() SourceConfig { return s.cfg }

// Start schedules the emission of nframes frames at the configured
// rate, beginning now.
func (s *Source) Start(nframes int) {
	if s.started {
		panic("video: source already started")
	}
	s.started = true
	s.limit = uint32(nframes)
	s.emit()
}

func (s *Source) emit() {
	if s.frame >= s.limit {
		return
	}
	f := s.frame
	s.frame++
	slice := make([]byte, s.cfg.SliceBytes)
	for i := 0; i < s.cfg.SlicesPerFrame; i++ {
		// Deterministic recognizable content: frame and slice stamped
		// through the payload.
		for j := range slice {
			slice[j] = byte(uint32(j) + f*31 + uint32(i)*7)
		}
		if _, err := s.snd.Send(Tag(f, uint16(i)), xcode.SyntaxRaw, slice); err != nil {
			s.SendErrors++
		}
	}
	s.FramesSent++
	s.sched.After(s.cfg.Period(), s.emit)
}

// FrameReport is the sink's verdict on one frame at its deadline.
type FrameReport struct {
	Frame    uint32
	Slices   int // slices present at the deadline
	Expected int
	Deadline sim.Time
	// Complete means every slice arrived in time.
	Complete bool
}

// String formats a report.
func (r FrameReport) String() string {
	return fmt.Sprintf("frame %d: %d/%d slices at %v", r.Frame, r.Slices, r.Expected, r.Deadline)
}

// SinkStats aggregates playout quality.
type SinkStats struct {
	FramesComplete int64 // all slices on time
	FramesPartial  int64 // rendered with missing slices
	FramesEmpty    int64 // nothing arrived by the deadline
	SlicesOnTime   int64
	SlicesLate     int64 // arrived after their frame rendered
}

// Sink consumes slice ADUs and renders frames at playout deadlines.
// Create it with the same SourceConfig as the sender and the stream
// start time (virtual) so deadlines line up.
type Sink struct {
	cfg    SourceConfig
	sched  *sim.Scheduler
	start  sim.Time
	delay  sim.Duration
	frames map[uint32]int // frame -> slices arrived (pre-deadline)
	done   map[uint32]bool

	// OnFrame, if set, receives every frame's report at its deadline.
	OnFrame func(FrameReport)

	// transit samples each slice's network transit relative to its
	// frame's nominal generation time — the timestamp information the
	// paper says real-time protocols carry to regenerate inter-packet
	// timing (§3 "Timestamping").
	transit stats.Sample

	Stats SinkStats
}

// TransitMean returns the mean slice transit time (arrival minus the
// frame's nominal generation instant).
func (k *Sink) TransitMean() sim.Duration {
	return sim.Duration(k.transit.Mean() * 1e9)
}

// Jitter returns the standard deviation of slice transit times — the
// playout buffer must absorb roughly this much timing noise, which is
// what playoutDelay budgets for.
func (k *Sink) Jitter() sim.Duration {
	return sim.Duration(k.transit.StdDev() * 1e9)
}

// TransitP99 returns the 99th percentile transit time; a playout delay
// below this misses about 1% of slices even with no loss.
func (k *Sink) TransitP99() sim.Duration {
	return sim.Duration(k.transit.Percentile(99) * 1e9)
}

// NewSink creates a sink whose frame f deadline is
// start + f*period + playoutDelay.
func NewSink(sched *sim.Scheduler, start sim.Time, playoutDelay sim.Duration, cfg SourceConfig) *Sink {
	cfg.fill()
	return &Sink{
		cfg:    cfg,
		sched:  sched,
		start:  start,
		delay:  playoutDelay,
		frames: make(map[uint32]int),
		done:   make(map[uint32]bool),
	}
}

// HandleADU consumes one slice (wire it to alf.Receiver.OnADU).
func (k *Sink) HandleADU(adu alf.ADU) {
	frame, _ := SplitTag(adu.Tag)
	nominal := k.start.Add(sim.Duration(frame) * k.cfg.Period())
	k.transit.AddDuration(time.Duration(k.sched.Now().Sub(nominal)))
	if k.done[frame] {
		k.Stats.SlicesLate++
		return
	}
	if _, seen := k.frames[frame]; !seen {
		k.armDeadline(frame)
	}
	k.frames[frame]++
	k.Stats.SlicesOnTime++
}

// HandleLoss consumes loss reports (wire it to alf.Receiver.OnLost);
// the sink needs nothing from them — the deadline renders regardless —
// but counting helps diagnostics.
func (k *Sink) HandleLoss(name uint64) {}

// armDeadline schedules the frame's render at its playout time.
func (k *Sink) armDeadline(frame uint32) {
	deadline := k.start.Add(sim.Duration(frame) * k.cfg.Period()).Add(k.delay)
	now := k.sched.Now()
	wait := deadline.Sub(now)
	if wait < 0 {
		wait = 0
	}
	k.sched.After(wait, func() { k.render(frame) })
}

func (k *Sink) render(frame uint32) {
	if k.done[frame] {
		return
	}
	k.done[frame] = true
	got := k.frames[frame]
	delete(k.frames, frame)
	switch {
	case got == k.cfg.SlicesPerFrame:
		k.Stats.FramesComplete++
	case got > 0:
		k.Stats.FramesPartial++
	default:
		k.Stats.FramesEmpty++
	}
	if k.OnFrame != nil {
		k.OnFrame(FrameReport{
			Frame: frame, Slices: got, Expected: k.cfg.SlicesPerFrame,
			Deadline: k.sched.Now(), Complete: got == k.cfg.SlicesPerFrame,
		})
	}
}

// FlushAll renders every frame up to limit that never got a deadline
// (frames whose slices were all lost). Call after the simulation
// settles to account for wholly-lost frames.
func (k *Sink) FlushAll(limit uint32) {
	for f := uint32(0); f < limit; f++ {
		if !k.done[f] {
			k.render(f)
		}
	}
}
