package video

import (
	"testing"
	"testing/quick"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestTagRoundtrip(t *testing.T) {
	f := func(frame uint32, slice uint16) bool {
		gf, gs := SplitTag(Tag(frame, slice))
		return gf == frame && gs == slice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSourceEmitsOnSchedule(t *testing.T) {
	s := sim.NewScheduler()
	var times []sim.Time
	var tags []uint64
	snd, err := alf.NewSender(s, func(pkt []byte) error { return nil }, alf.Config{
		Policy: alf.NoRetransmit, HeartbeatLimit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Intercept at the Send level via a wrapper source and custom cfg.
	cfg := SourceConfig{FPS: 10, SlicesPerFrame: 2, SliceBytes: 100}
	src := NewSource(s, snd, cfg)
	// Observe emission times through a hook: wrap the scheduler clock by
	// sampling after each frame via OnRelease? Simpler: watch sender
	// stats between steps.
	src.Start(3)
	prevADUs := int64(0)
	for s.Step() {
		if snd.Stats.ADUs != prevADUs {
			prevADUs = snd.Stats.ADUs
			times = append(times, s.Now())
			_ = tags
		}
	}
	if src.FramesSent != 3 {
		t.Fatalf("frames sent = %d", src.FramesSent)
	}
	if snd.Stats.ADUs != 6 {
		t.Errorf("ADUs = %d, want 6", snd.Stats.ADUs)
	}
	// Frames at 0, 100ms, 200ms.
	if s.Now() < sim.Time(200*time.Millisecond) {
		t.Errorf("last frame at %v, want >= 200ms", s.Now())
	}
}

func TestPeriod(t *testing.T) {
	cfg := SourceConfig{FPS: 25}
	cfg.fill()
	if cfg.Period() != 40*time.Millisecond {
		t.Errorf("period = %v", cfg.Period())
	}
}

func TestSinkCompleteFrames(t *testing.T) {
	s := sim.NewScheduler()
	cfg := SourceConfig{FPS: 30, SlicesPerFrame: 4, SliceBytes: 10}
	cfg.fill()
	k := NewSink(s, 0, 50*time.Millisecond, cfg)
	var reports []FrameReport
	k.OnFrame = func(r FrameReport) { reports = append(reports, r) }

	// Deliver all slices of frames 0 and 1 promptly.
	for f := uint32(0); f < 2; f++ {
		for sl := 0; sl < 4; sl++ {
			k.HandleADU(alf.ADU{Tag: Tag(f, uint16(sl)), Data: make([]byte, 10)})
		}
	}
	s.Run()
	if k.Stats.FramesComplete != 2 || k.Stats.FramesPartial != 0 {
		t.Errorf("stats = %+v", k.Stats)
	}
	if len(reports) != 2 || !reports[0].Complete {
		t.Errorf("reports = %v", reports)
	}
	// Frame 1's deadline is period later than frame 0's.
	if reports[1].Deadline.Sub(reports[0].Deadline) != cfg.Period() {
		t.Errorf("deadlines %v, %v", reports[0].Deadline, reports[1].Deadline)
	}
}

func TestSinkPartialAndLateSlices(t *testing.T) {
	s := sim.NewScheduler()
	cfg := SourceConfig{FPS: 30, SlicesPerFrame: 4}
	cfg.fill()
	k := NewSink(s, 0, 10*time.Millisecond, cfg)

	// 3 of 4 slices before the deadline.
	for sl := 0; sl < 3; sl++ {
		k.HandleADU(alf.ADU{Tag: Tag(0, uint16(sl))})
	}
	// The 4th arrives late.
	s.After(20*time.Millisecond, func() {
		k.HandleADU(alf.ADU{Tag: Tag(0, 3)})
	})
	s.Run()
	if k.Stats.FramesPartial != 1 {
		t.Errorf("partial = %d", k.Stats.FramesPartial)
	}
	if k.Stats.SlicesLate != 1 {
		t.Errorf("late = %d", k.Stats.SlicesLate)
	}
}

func TestSinkFlushAllCountsEmptyFrames(t *testing.T) {
	s := sim.NewScheduler()
	cfg := SourceConfig{SlicesPerFrame: 2}
	cfg.fill()
	k := NewSink(s, 0, 0, cfg)
	k.HandleADU(alf.ADU{Tag: Tag(1, 0)})
	s.Run()
	k.FlushAll(3) // frames 0 and 2 never saw a slice
	if k.Stats.FramesEmpty != 2 || k.Stats.FramesPartial != 1 {
		t.Errorf("stats = %+v", k.Stats)
	}
}

func TestEndToEndLossyRealTime(t *testing.T) {
	// Full pipeline: source -> ALF NoRetransmit -> lossy link -> sink.
	// Under 5% loss most frames should render complete or partial, and
	// nothing should ever stall a later frame.
	s := sim.NewScheduler()
	n := netsim.New(s, 41)
	a := n.NewNode("src")
	b := n.NewNode("dst")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: 1e8, Delay: 5 * time.Millisecond, LossProb: 0.05,
	})
	cfg := alf.Config{
		Policy:       alf.NoRetransmit,
		HoldTime:     100 * time.Millisecond,
		NackInterval: 10 * time.Millisecond,
	}
	snd, _ := alf.NewSender(s, ab.Send, cfg)
	rcv, _ := alf.NewReceiver(s, ba.Send, cfg)
	a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	vcfg := SourceConfig{FPS: 30, SlicesPerFrame: 5, SliceBytes: 1000}
	src := NewSource(s, snd, vcfg)
	sink := NewSink(s, 0, 40*time.Millisecond, vcfg)
	rcv.OnADU = sink.HandleADU
	rcv.OnLost = sink.HandleLoss

	const frames = 60
	src.Start(frames)
	s.Run()
	sink.FlushAll(frames)

	total := sink.Stats.FramesComplete + sink.Stats.FramesPartial + sink.Stats.FramesEmpty
	if total != frames {
		t.Fatalf("accounted %d of %d frames", total, frames)
	}
	if sink.Stats.FramesComplete < frames/2 {
		t.Errorf("only %d complete frames of %d", sink.Stats.FramesComplete, frames)
	}
	// With 5% slice loss and 5 slices/frame, some partial frames are
	// overwhelmingly likely across 60 frames.
	if sink.Stats.FramesPartial == 0 {
		t.Error("no partial frames at 5% loss — loss path untested")
	}
	if snd.Stats.ResentADUs != 0 {
		t.Error("NoRetransmit stream resent data")
	}
}

func TestSinkTransitAndJitter(t *testing.T) {
	s := sim.NewScheduler()
	n := netsim.New(s, 51)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: 5e7, Delay: 10 * time.Millisecond,
		ReorderProb: 0.2, ReorderDelay: 6 * time.Millisecond,
	})
	cfg := alf.Config{Policy: alf.NoRetransmit, HoldTime: 100 * time.Millisecond}
	snd, _ := alf.NewSender(s, ab.Send, cfg)
	rcv, _ := alf.NewReceiver(s, ba.Send, cfg)
	a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	vcfg := SourceConfig{FPS: 25, SlicesPerFrame: 4, SliceBytes: 1000}
	src := NewSource(s, snd, vcfg)
	sink := NewSink(s, 0, 50*time.Millisecond, vcfg)
	rcv.OnADU = sink.HandleADU
	src.Start(40)
	s.Run()
	sink.FlushAll(40)

	// Mean transit must be at least the 10ms propagation delay.
	if sink.TransitMean() < 10*time.Millisecond {
		t.Errorf("mean transit %v below propagation delay", sink.TransitMean())
	}
	// Reorder jitter (up to 6ms extra on 20% of packets) must show up
	// but stay bounded.
	if sink.Jitter() == 0 {
		t.Error("zero jitter despite reordering impairment")
	}
	if sink.Jitter() > 10*time.Millisecond {
		t.Errorf("jitter %v implausibly high", sink.Jitter())
	}
	// P99 transit bounds what a playout buffer must absorb.
	if sink.TransitP99() < sink.TransitMean() {
		t.Error("p99 below mean")
	}
	if sink.TransitP99() > 30*time.Millisecond {
		t.Errorf("p99 transit %v exceeds delay+reorder budget", sink.TransitP99())
	}
}
