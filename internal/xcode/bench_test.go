package xcode

import (
	"math/rand"
	"testing"
)

func benchInts(n int) []int32 {
	vs := make([]int32, n)
	r := rand.New(rand.NewSource(1))
	for i := range vs {
		vs[i] = int32(r.Uint32())
	}
	return vs
}

func benchEncode(b *testing.B, c Codec, v Value, appBytes int) {
	b.Helper()
	buf := make([]byte, 0, appBytes*3+64)
	b.SetBytes(int64(appBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = c.EncodeValue(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecode(b *testing.B, c Codec, v Value, appBytes int) {
	b.Helper()
	enc, err := c.EncodeValue(nil, v)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(appBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.DecodeValue(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeInt32s4KB(b *testing.B) {
	v := Int32sValue(benchInts(1024))
	for _, c := range Codecs() {
		b.Run(c.Name(), func(b *testing.B) { benchEncode(b, c, v, 4096) })
	}
}

func BenchmarkDecodeInt32s4KB(b *testing.B) {
	v := Int32sValue(benchInts(1024))
	for _, c := range Codecs() {
		b.Run(c.Name(), func(b *testing.B) { benchDecode(b, c, v, 4096) })
	}
}

func BenchmarkEncodeBytes4KB(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(data)
	v := BytesValue(data)
	for _, c := range Codecs() {
		b.Run(c.Name(), func(b *testing.B) { benchEncode(b, c, v, 4096) })
	}
}

func BenchmarkSizeValue(b *testing.B) {
	v := Int32sValue(benchInts(1024))
	for _, c := range Codecs() {
		b.Run(c.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.SizeValue(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
