package xcode

import (
	"fmt"
	"math"
)

// ASN.1 BER universal tags used by this subset.
const (
	TagInteger     = 0x02
	TagOctetString = 0x04
	TagUTF8String  = 0x0C
	TagSequence    = 0x30 // constructed
)

// BER implements the ASN.1 Basic Encoding Rules subset: INTEGER,
// OCTET STRING, UTF8String, and SEQUENCE OF INTEGER (for KindInt32s).
// Definite lengths only; integers are minimal two's complement.
type BER struct{}

// ID implements Codec.
func (BER) ID() SyntaxID { return SyntaxBER }

// Name implements Codec.
func (BER) Name() string { return "ber" }

// berIntContentLen returns the number of content octets of a minimal
// two's-complement INTEGER encoding of v.
func berIntContentLen(v int64) int {
	// Strip redundant leading octets: an octet is redundant when it is
	// 0x00 followed by a clear top bit, or 0xFF followed by a set one.
	n := 8
	for n > 1 {
		top := byte(v >> uint(8*(n-1)))
		next := byte(v >> uint(8*(n-2)))
		if (top == 0x00 && next&0x80 == 0) || (top == 0xFF && next&0x80 != 0) {
			n--
			continue
		}
		break
	}
	return n
}

// berLenLen returns the number of octets the length field occupies for a
// content length n (short form below 128, minimal long form otherwise).
func berLenLen(n int) int {
	switch {
	case n < 0x80:
		return 1
	case n <= 0xFF:
		return 2
	case n <= 0xFFFF:
		return 3
	case n <= 0xFFFFFF:
		return 4
	default:
		return 5
	}
}

// AppendBERHeader appends a tag and definite length to dst.
func AppendBERHeader(dst []byte, tag byte, length int) []byte {
	dst = append(dst, tag)
	switch {
	case length < 0x80:
		return append(dst, byte(length))
	case length <= 0xFF:
		return append(dst, 0x81, byte(length))
	case length <= 0xFFFF:
		return append(dst, 0x82, byte(length>>8), byte(length))
	case length <= 0xFFFFFF:
		return append(dst, 0x83, byte(length>>16), byte(length>>8), byte(length))
	default:
		return append(dst, 0x84, byte(length>>24), byte(length>>16), byte(length>>8), byte(length))
	}
}

// AppendBERInt appends a complete INTEGER TLV encoding v.
func AppendBERInt(dst []byte, v int64) []byte {
	n := berIntContentLen(v)
	dst = append(dst, TagInteger, byte(n))
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>uint(8*i)))
	}
	return dst
}

// BERIntSize returns the full TLV size of an INTEGER encoding v.
func BERIntSize(v int64) int { return 2 + berIntContentLen(v) }

// ParseBERHeader parses a tag and definite length from the front of src,
// returning the tag, the content length, and the header size.
func ParseBERHeader(src []byte) (tag byte, length, hdr int, err error) {
	if len(src) < 2 {
		return 0, 0, 0, fmt.Errorf("%w: header needs 2 bytes, have %d", ErrTruncated, len(src))
	}
	tag = src[0]
	b := src[1]
	if b < 0x80 {
		return tag, int(b), 2, nil
	}
	if b == 0x80 {
		return 0, 0, 0, ErrBadIndef
	}
	n := int(b & 0x7F)
	if n > 4 {
		return 0, 0, 0, fmt.Errorf("%w: %d length octets", ErrBadLength, n)
	}
	if len(src) < 2+n {
		return 0, 0, 0, fmt.Errorf("%w: long-form length", ErrTruncated)
	}
	length = 0
	for i := 0; i < n; i++ {
		length = length<<8 | int(src[2+i])
	}
	if length < 0 {
		return 0, 0, 0, fmt.Errorf("%w: negative", ErrBadLength)
	}
	return tag, length, 2 + n, nil
}

// ParseBERInt decodes one INTEGER TLV from the front of src, returning
// the value and total bytes consumed.
func ParseBERInt(src []byte) (int64, int, error) {
	tag, length, hdr, err := ParseBERHeader(src)
	if err != nil {
		return 0, 0, err
	}
	if tag != TagInteger {
		return 0, 0, fmt.Errorf("%w: got %#02x, want INTEGER", ErrBadTag, tag)
	}
	if length == 0 {
		return 0, 0, fmt.Errorf("%w: empty INTEGER", ErrBadValue)
	}
	if length > 8 {
		return 0, 0, fmt.Errorf("%w: INTEGER with %d content octets", ErrOverflow, length)
	}
	if len(src) < hdr+length {
		return 0, 0, fmt.Errorf("%w: INTEGER content", ErrTruncated)
	}
	content := src[hdr : hdr+length]
	if length >= 2 {
		if (content[0] == 0x00 && content[1]&0x80 == 0) ||
			(content[0] == 0xFF && content[1]&0x80 != 0) {
			return 0, 0, ErrNotMinimal
		}
	}
	v := int64(int8(content[0])) // sign-extend
	for _, b := range content[1:] {
		v = v<<8 | int64(b)
	}
	return v, hdr + length, nil
}

// EncodeValue implements Codec.
func (b BER) EncodeValue(dst []byte, v Value) ([]byte, error) {
	return b.encode(dst, v, 0)
}

func (b BER) encode(dst []byte, v Value, depth int) ([]byte, error) {
	if depth > MaxDepth {
		return nil, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	switch v.Kind {
	case KindBytes:
		dst = AppendBERHeader(dst, TagOctetString, len(v.Bytes))
		return append(dst, v.Bytes...), nil
	case KindString:
		dst = AppendBERHeader(dst, TagUTF8String, len(v.Str))
		return append(dst, v.Str...), nil
	case KindInt32, KindInt64:
		return AppendBERInt(dst, v.I64), nil
	case KindInt32s:
		content := 0
		for _, x := range v.Ints {
			content += BERIntSize(int64(x))
		}
		dst = AppendBERHeader(dst, TagSequence, content)
		for _, x := range v.Ints {
			dst = AppendBERInt(dst, int64(x))
		}
		return dst, nil
	case KindSeq:
		content := 0
		for i := range v.Seq {
			n, err := b.size(v.Seq[i], depth+1)
			if err != nil {
				return nil, err
			}
			content += n
		}
		dst = AppendBERHeader(dst, TagSequence, content)
		for i := range v.Seq {
			var err error
			dst, err = b.encode(dst, v.Seq[i], depth+1)
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("%w: %v in BER", ErrKind, v.Kind)
	}
}

// SizeValue implements Codec.
func (b BER) SizeValue(v Value) (int, error) {
	return b.size(v, 0)
}

func (b BER) size(v Value, depth int) (int, error) {
	if depth > MaxDepth {
		return 0, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	switch v.Kind {
	case KindBytes:
		return 1 + berLenLen(len(v.Bytes)) + len(v.Bytes), nil
	case KindString:
		return 1 + berLenLen(len(v.Str)) + len(v.Str), nil
	case KindInt32, KindInt64:
		return BERIntSize(v.I64), nil
	case KindInt32s:
		content := 0
		for _, x := range v.Ints {
			content += BERIntSize(int64(x))
		}
		return 1 + berLenLen(content) + content, nil
	case KindSeq:
		content := 0
		for i := range v.Seq {
			n, err := b.size(v.Seq[i], depth+1)
			if err != nil {
				return 0, err
			}
			content += n
		}
		return 1 + berLenLen(content) + content, nil
	default:
		return 0, fmt.Errorf("%w: %v in BER", ErrKind, v.Kind)
	}
}

// DecodeValue implements Codec.
func (b BER) DecodeValue(src []byte) (Value, int, error) {
	return b.decode(src, 0)
}

func (b BER) decode(src []byte, depth int) (Value, int, error) {
	if depth > MaxDepth {
		return Value{}, 0, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	tag, length, hdr, err := ParseBERHeader(src)
	if err != nil {
		return Value{}, 0, err
	}
	if len(src) < hdr+length {
		return Value{}, 0, fmt.Errorf("%w: content (%d of %d bytes)", ErrTruncated, len(src)-hdr, length)
	}
	content := src[hdr : hdr+length]
	total := hdr + length
	switch tag {
	case TagOctetString:
		out := make([]byte, length)
		copy(out, content)
		return BytesValue(out), total, nil
	case TagUTF8String:
		return StringValue(string(content)), total, nil
	case TagInteger:
		v, _, err := ParseBERInt(src)
		if err != nil {
			return Value{}, 0, err
		}
		if v >= math.MinInt32 && v <= math.MaxInt32 {
			return Int32Value(int32(v)), total, nil
		}
		return Int64Value(v), total, nil
	case TagSequence:
		// A SEQUENCE whose elements are all int32-ranged INTEGERs decodes
		// to the compact KindInt32s (the paper's integer-array workload);
		// anything else decodes recursively to KindSeq.
		ints, ok := tryInt32Sequence(content)
		if ok {
			return Int32sValue(ints), total, nil
		}
		var seq []Value
		for off := 0; off < len(content); {
			v, n, err := b.decode(content[off:], depth+1)
			if err != nil {
				return Value{}, 0, fmt.Errorf("sequence element %d: %w", len(seq), err)
			}
			seq = append(seq, v)
			off += n
		}
		return Value{Kind: KindSeq, Seq: seq}, total, nil
	default:
		return Value{}, 0, fmt.Errorf("%w: %#02x", ErrBadTag, tag)
	}
}

// tryInt32Sequence parses SEQUENCE content as a homogeneous array of
// int32-ranged INTEGERs, reporting whether that interpretation holds.
func tryInt32Sequence(content []byte) ([]int32, bool) {
	var ints []int32
	for off := 0; off < len(content); {
		v, n, err := ParseBERInt(content[off:])
		if err != nil || v < math.MinInt32 || v > math.MaxInt32 {
			return nil, false
		}
		ints = append(ints, int32(v))
		off += n
	}
	return ints, true
}
