package xcode

import "fmt"

// A Message is an ordered sequence of values — the argument or result
// list of a remote procedure call. The paper's RPC discussion (§5, §6)
// is about exactly this: the presentation layer must deliver these
// values into distinct application variables, not into one linear
// buffer.
type Message []Value

// EncodeMessage appends the encoding of msg in codec c: a one-byte
// syntax ID, a two-byte big-endian value count, then each value in
// sequence. The embedded syntax ID makes messages self-describing so a
// receiver can decode without prior negotiation.
func EncodeMessage(c Codec, dst []byte, msg Message) ([]byte, error) {
	if len(msg) > 0xFFFF {
		return nil, fmt.Errorf("%w: %d values in message", ErrOverflow, len(msg))
	}
	dst = append(dst, byte(c.ID()), byte(len(msg)>>8), byte(len(msg)))
	for i, v := range msg {
		var err error
		dst, err = c.EncodeValue(dst, v)
		if err != nil {
			return nil, fmt.Errorf("message value %d: %w", i, err)
		}
	}
	return dst, nil
}

// SizeMessage returns the exact encoded size of msg in codec c.
func SizeMessage(c Codec, msg Message) (int, error) {
	total := 3
	for i, v := range msg {
		n, err := c.SizeValue(v)
		if err != nil {
			return 0, fmt.Errorf("message value %d: %w", i, err)
		}
		total += n
	}
	return total, nil
}

// DecodeMessage decodes a message produced by EncodeMessage, returning
// the message, the codec it was encoded with, and the bytes consumed.
func DecodeMessage(src []byte) (Message, Codec, int, error) {
	if len(src) < 3 {
		return nil, nil, 0, fmt.Errorf("%w: message header", ErrTruncated)
	}
	c, err := ByID(SyntaxID(src[0]))
	if err != nil {
		return nil, nil, 0, err
	}
	count := int(src[1])<<8 | int(src[2])
	msg := make(Message, 0, count)
	off := 3
	for i := 0; i < count; i++ {
		v, n, err := c.DecodeValue(src[off:])
		if err != nil {
			return nil, nil, 0, fmt.Errorf("message value %d: %w", i, err)
		}
		msg = append(msg, v)
		off += n
	}
	return msg, c, off, nil
}
