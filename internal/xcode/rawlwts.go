package xcode

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Raw is the "image"/"internal" transfer syntax: a one-byte kind, a
// four-byte big-endian byte count, and the value bytes with no
// per-element structure. It is the cheapest syntax — essentially a copy
// — and is what the paper says "most applications that attempt to
// achieve high performance today" use (§5).
type Raw struct{}

// ID implements Codec.
func (Raw) ID() SyntaxID { return SyntaxRaw }

// Name implements Codec.
func (Raw) Name() string { return "raw" }

const rawHeader = 5 // kind byte + uint32 payload length

func appendRawHeader(dst []byte, k Kind, n int) []byte {
	return append(dst, byte(k), byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
}

// EncodeValue implements Codec.
func (r Raw) EncodeValue(dst []byte, v Value) ([]byte, error) {
	return r.encode(dst, v, 0)
}

func (r Raw) encode(dst []byte, v Value, depth int) ([]byte, error) {
	if depth > MaxDepth {
		return nil, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	switch v.Kind {
	case KindBytes:
		dst = appendRawHeader(dst, v.Kind, len(v.Bytes))
		return append(dst, v.Bytes...), nil
	case KindString:
		dst = appendRawHeader(dst, v.Kind, len(v.Str))
		return append(dst, v.Str...), nil
	case KindInt32:
		dst = appendRawHeader(dst, v.Kind, 4)
		return appendUint32(dst, uint32(int32(v.I64))), nil
	case KindInt64:
		dst = appendRawHeader(dst, v.Kind, 8)
		return appendUint64(dst, uint64(v.I64)), nil
	case KindInt32s:
		dst = appendRawHeader(dst, v.Kind, 4*len(v.Ints))
		for _, e := range v.Ints {
			dst = appendUint32(dst, uint32(e))
		}
		return dst, nil
	case KindSeq:
		// For sequences the 4-byte field carries the element count; the
		// elements follow, each self-delimiting.
		dst = appendRawHeader(dst, v.Kind, len(v.Seq))
		for i := range v.Seq {
			var err error
			dst, err = r.encode(dst, v.Seq[i], depth+1)
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("%w: %v in raw", ErrKind, v.Kind)
	}
}

// SizeValue implements Codec.
func (r Raw) SizeValue(v Value) (int, error) {
	return r.sizeOf(v, 0)
}

func (r Raw) sizeOf(v Value, depth int) (int, error) {
	if depth > MaxDepth {
		return 0, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	switch v.Kind {
	case KindBytes:
		return rawHeader + len(v.Bytes), nil
	case KindString:
		return rawHeader + len(v.Str), nil
	case KindInt32:
		return rawHeader + 4, nil
	case KindInt64:
		return rawHeader + 8, nil
	case KindInt32s:
		return rawHeader + 4*len(v.Ints), nil
	case KindSeq:
		total := rawHeader
		for i := range v.Seq {
			n, err := r.sizeOf(v.Seq[i], depth+1)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	default:
		return 0, fmt.Errorf("%w: %v in raw", ErrKind, v.Kind)
	}
}

func decodePrefixed(src []byte, syntax string) (Kind, []byte, int, error) {
	if len(src) < rawHeader {
		return 0, nil, 0, fmt.Errorf("%w: %s header", ErrTruncated, syntax)
	}
	k := Kind(src[0])
	n := int(binary.BigEndian.Uint32(src[1:5]))
	if n < 0 || len(src) < rawHeader+n {
		return 0, nil, 0, fmt.Errorf("%w: %s payload of %d bytes", ErrTruncated, syntax, n)
	}
	return k, src[rawHeader : rawHeader+n], rawHeader + n, nil
}

func decodeFixedWidth(src []byte, syntax string) (Value, int, error) {
	k, body, total, err := decodePrefixed(src, syntax)
	if err != nil {
		return Value{}, 0, err
	}
	switch k {
	case KindBytes:
		out := make([]byte, len(body))
		copy(out, body)
		return BytesValue(out), total, nil
	case KindString:
		return StringValue(string(body)), total, nil
	case KindInt32:
		if len(body) != 4 {
			return Value{}, 0, fmt.Errorf("%w: %s int32 length %d", ErrBadValue, syntax, len(body))
		}
		return Int32Value(int32(binary.BigEndian.Uint32(body))), total, nil
	case KindInt64:
		if len(body) != 8 {
			return Value{}, 0, fmt.Errorf("%w: %s int64 length %d", ErrBadValue, syntax, len(body))
		}
		return Int64Value(int64(binary.BigEndian.Uint64(body))), total, nil
	case KindInt32s:
		if len(body)%4 != 0 {
			return Value{}, 0, fmt.Errorf("%w: %s int32 array length %d", ErrBadValue, syntax, len(body))
		}
		ints := make([]int32, len(body)/4)
		for i := range ints {
			ints[i] = int32(binary.BigEndian.Uint32(body[4*i:]))
		}
		return Int32sValue(ints), total, nil
	default:
		return Value{}, 0, fmt.Errorf("%w: %s kind %d", ErrBadValue, syntax, k)
	}
}

// DecodeValue implements Codec.
func (r Raw) DecodeValue(src []byte) (Value, int, error) {
	return r.decode(src, 0)
}

func (r Raw) decode(src []byte, depth int) (Value, int, error) {
	if depth > MaxDepth {
		return Value{}, 0, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	if len(src) >= rawHeader && Kind(src[0]) == KindSeq {
		return decodeSeq(src, depth, "raw", func(s []byte, d int) (Value, int, error) {
			return r.decode(s, d)
		})
	}
	return decodeFixedWidth(src, "raw")
}

// decodeSeq parses a sequence header (count in the 4-byte field) and
// decodes count self-delimiting elements with the codec's own decoder.
func decodeSeq(src []byte, depth int, syntax string, dec func([]byte, int) (Value, int, error)) (Value, int, error) {
	if depth > MaxDepth {
		return Value{}, 0, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	n := int(binary.BigEndian.Uint32(src[1:5]))
	if n < 0 || n > len(src) { // each element needs at least 1 byte
		return Value{}, 0, fmt.Errorf("%w: %s seq of %d", ErrTruncated, syntax, n)
	}
	seq := make([]Value, 0, n)
	off := rawHeader
	for i := 0; i < n; i++ {
		v, used, err := dec(src[off:], depth+1)
		if err != nil {
			return Value{}, 0, fmt.Errorf("%s seq element %d: %w", syntax, i, err)
		}
		seq = append(seq, v)
		off += used
	}
	return Value{Kind: KindSeq, Seq: seq}, off, nil
}

// LWTS is the light-weight transfer syntax in the spirit of Huitema &
// Doghri's "high speed approach for the OSI presentation protocol" [8]:
// self-describing like BER but with fixed-width elements and a single
// count instead of per-element tag/length pairs. Integers travel as
// variable-width-free 4-byte two's complement, so encoding an integer
// array is one bounds check and one store per element.
//
// The wire format differs from Raw only in that integer arrays carry an
// element count (not a byte count) and values are checked for range at
// encode time; it exists as a distinct SyntaxID so the E3/E5 experiments
// can compare "tuned standard" against both BER and raw image mode.
type LWTS struct{}

// ID implements Codec.
func (LWTS) ID() SyntaxID { return SyntaxLWTS }

// Name implements Codec.
func (LWTS) Name() string { return "lwts" }

// EncodeValue implements Codec.
func (l LWTS) EncodeValue(dst []byte, v Value) ([]byte, error) {
	return l.encode(dst, v, 0)
}

func (l LWTS) encode(dst []byte, v Value, depth int) ([]byte, error) {
	if depth > MaxDepth {
		return nil, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	if v.Kind == KindInt32 && (v.I64 < math.MinInt32 || v.I64 > math.MaxInt32) {
		return nil, fmt.Errorf("%w: %d as LWTS int32", ErrOverflow, v.I64)
	}
	if v.Kind == KindInt32s {
		dst = append(dst, byte(v.Kind))
		dst = appendUint32(dst, uint32(len(v.Ints)))
		for _, e := range v.Ints {
			dst = appendUint32(dst, uint32(e))
		}
		return dst, nil
	}
	if v.Kind == KindSeq {
		dst = appendRawHeader(dst, v.Kind, len(v.Seq))
		for i := range v.Seq {
			var err error
			dst, err = l.encode(dst, v.Seq[i], depth+1)
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	}
	return Raw{}.EncodeValue(dst, v)
}

// SizeValue implements Codec.
func (LWTS) SizeValue(v Value) (int, error) { return Raw{}.SizeValue(v) }

// DecodeValue implements Codec.
func (l LWTS) DecodeValue(src []byte) (Value, int, error) {
	return l.decode(src, 0)
}

func (l LWTS) decode(src []byte, depth int) (Value, int, error) {
	if depth > MaxDepth {
		return Value{}, 0, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	if len(src) >= rawHeader && Kind(src[0]) == KindSeq {
		return decodeSeq(src, depth, "lwts", func(s []byte, d int) (Value, int, error) {
			return l.decode(s, d)
		})
	}
	if len(src) >= rawHeader && Kind(src[0]) == KindInt32s {
		n := int(binary.BigEndian.Uint32(src[1:5]))
		if n < 0 || len(src) < rawHeader+4*n {
			return Value{}, 0, fmt.Errorf("%w: LWTS array of %d", ErrTruncated, n)
		}
		ints := make([]int32, n)
		body := src[rawHeader:]
		for i := range ints {
			ints[i] = int32(binary.BigEndian.Uint32(body[4*i:]))
		}
		return Int32sValue(ints), rawHeader + 4*n, nil
	}
	return decodeFixedWidth(src, "lwts")
}
