// Package xcode is the presentation layer: conversion between
// application ("local syntax") values and the transfer syntaxes carried
// on the wire (paper §5).
//
// Four transfer syntaxes are provided:
//
//   - Raw: the "image"/"internal" format — bytes are moved unconverted.
//   - BER: a from-scratch subset of ASN.1 Basic Encoding Rules (INTEGER,
//     OCTET STRING, SEQUENCE), the expensive conversion of the paper's §4
//     experiments.
//   - XDR: a subset of Sun XDR (4-byte alignment, big-endian).
//   - LWTS: a light-weight transfer syntax in the spirit of Huitema &
//     Doghri [8] — fixed-width, count-prefixed, no per-element TLV.
//
// A Codec also reports the encoded size of a value without encoding it
// (SizeValue), which is what lets an ALF sender compute, in terms
// meaningful to the receiver, where each ADU will land (paper §5, "the
// sender must be able to specify the disposition of the ADU in terms
// meaningful to the receiver").
package xcode

import (
	"errors"
	"fmt"
)

// SyntaxID names a transfer syntax on the wire. Zero is invalid so that
// an unset header field is detectable.
type SyntaxID uint8

const (
	// SyntaxRaw is the identity transfer syntax ("image" mode).
	SyntaxRaw SyntaxID = 1
	// SyntaxBER is the ASN.1 Basic Encoding Rules subset.
	SyntaxBER SyntaxID = 2
	// SyntaxXDR is the Sun XDR subset.
	SyntaxXDR SyntaxID = 3
	// SyntaxLWTS is the light-weight transfer syntax.
	SyntaxLWTS SyntaxID = 4
)

// MaxDepth bounds nested sequence recursion in every codec, so hostile
// encodings cannot exhaust the stack.
const MaxDepth = 32

// Errors reported by decoders. All are wrapped with context; test with
// errors.Is.
var (
	ErrTruncated  = errors.New("xcode: truncated encoding")
	ErrBadTag     = errors.New("xcode: unexpected tag")
	ErrBadLength  = errors.New("xcode: invalid length")
	ErrBadValue   = errors.New("xcode: malformed value")
	ErrUnknownID  = errors.New("xcode: unknown syntax id")
	ErrKind       = errors.New("xcode: value kind not supported by syntax")
	ErrOverflow   = errors.New("xcode: value exceeds representable range")
	ErrTrailing   = errors.New("xcode: trailing bytes after value")
	ErrDepth      = errors.New("xcode: nesting too deep")
	ErrBadIndef   = errors.New("xcode: indefinite lengths not supported")
	ErrNotMinimal = errors.New("xcode: non-minimal integer encoding")
)

// Kind discriminates the application-level value types the presentation
// layer converts.
type Kind uint8

const (
	// KindBytes is an opaque byte string (ASN.1 OCTET STRING, XDR opaque).
	KindBytes Kind = iota + 1
	// KindInt32 is a signed 32-bit integer.
	KindInt32
	// KindInt64 is a signed 64-bit integer.
	KindInt64
	// KindString is a UTF-8 text string.
	KindString
	// KindInt32s is an array of signed 32-bit integers (the paper's
	// "array of integers" workload).
	KindInt32s
	// KindSeq is an ordered sequence of nested values — the structured
	// records RPC arguments actually are (§5: presentation is "to or
	// from various language-level variables").
	KindSeq
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindBytes:
		return "bytes"
	case KindInt32:
		return "int32"
	case KindInt64:
		return "int64"
	case KindString:
		return "string"
	case KindInt32s:
		return "int32s"
	case KindSeq:
		return "seq"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a tagged union of the application value types. Exactly the
// field selected by Kind is meaningful.
type Value struct {
	Kind  Kind
	Bytes []byte
	I64   int64 // used by KindInt32 and KindInt64
	Str   string
	Ints  []int32
	Seq   []Value
}

// BytesValue wraps b as a Value.
func BytesValue(b []byte) Value { return Value{Kind: KindBytes, Bytes: b} }

// Int32Value wraps v as a Value.
func Int32Value(v int32) Value { return Value{Kind: KindInt32, I64: int64(v)} }

// Int64Value wraps v as a Value.
func Int64Value(v int64) Value { return Value{Kind: KindInt64, I64: v} }

// StringValue wraps s as a Value.
func StringValue(s string) Value { return Value{Kind: KindString, Str: s} }

// Int32sValue wraps vs as a Value.
func Int32sValue(vs []int32) Value { return Value{Kind: KindInt32s, Ints: vs} }

// SeqValue wraps vs as a nested sequence Value.
func SeqValue(vs ...Value) Value { return Value{Kind: KindSeq, Seq: vs} }

// Equal reports deep equality of two values. The two integer kinds
// compare by numeric value regardless of width, because syntaxes that
// carry a single INTEGER type (BER) decode to the narrowest kind that
// fits.
func (v Value) Equal(o Value) bool {
	if v.Kind == KindInt32 || v.Kind == KindInt64 {
		return (o.Kind == KindInt32 || o.Kind == KindInt64) && v.I64 == o.I64
	}
	if v.Kind == KindInt32s && o.Kind == KindSeq {
		return seqEqualsInts(o.Seq, v.Ints)
	}
	if v.Kind == KindSeq && o.Kind == KindInt32s {
		return seqEqualsInts(v.Seq, o.Ints)
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindBytes:
		return bytesEqual(v.Bytes, o.Bytes)
	case KindString:
		return v.Str == o.Str
	case KindInt32s:
		if len(v.Ints) != len(o.Ints) {
			return false
		}
		for i := range v.Ints {
			if v.Ints[i] != o.Ints[i] {
				return false
			}
		}
		return true
	case KindSeq:
		if len(v.Seq) != len(o.Seq) {
			return false
		}
		for i := range v.Seq {
			if !v.Seq[i].Equal(o.Seq[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// seqEqualsInts compares a sequence of numeric values with an integer
// array — needed because BER cannot distinguish "SEQUENCE of INTEGER
// written as KindSeq" from KindInt32s, and decodes the homogeneous form
// to the compact kind.
func seqEqualsInts(seq []Value, ints []int32) bool {
	if len(seq) != len(ints) {
		return false
	}
	for i, v := range seq {
		if (v.Kind != KindInt32 && v.Kind != KindInt64) || v.I64 != int64(ints[i]) {
			return false
		}
	}
	return true
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Codec converts values to and from one transfer syntax. Encoders append
// to dst and return the extended slice; decoders return the value, the
// number of bytes consumed, and an error. All implementations are
// stateless and safe for concurrent use.
type Codec interface {
	// ID returns the wire identifier of the syntax.
	ID() SyntaxID
	// Name returns a short human-readable name.
	Name() string
	// EncodeValue appends the encoding of v to dst.
	EncodeValue(dst []byte, v Value) ([]byte, error)
	// DecodeValue decodes one value from the front of src.
	DecodeValue(src []byte) (Value, int, error)
	// SizeValue returns the exact encoded size of v in this syntax
	// without encoding it.
	SizeValue(v Value) (int, error)
}

// ByID returns the codec registered for id.
func ByID(id SyntaxID) (Codec, error) {
	switch id {
	case SyntaxRaw:
		return Raw{}, nil
	case SyntaxBER:
		return BER{}, nil
	case SyntaxXDR:
		return XDR{}, nil
	case SyntaxLWTS:
		return LWTS{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
}

// Codecs returns all registered codecs, for table-driven tests and the
// experiment harness.
func Codecs() []Codec {
	return []Codec{Raw{}, BER{}, XDR{}, LWTS{}}
}

// Roundtrip encodes v with c and decodes it back, for self-checks.
func Roundtrip(c Codec, v Value) (Value, error) {
	enc, err := c.EncodeValue(nil, v)
	if err != nil {
		return Value{}, err
	}
	out, n, err := c.DecodeValue(enc)
	if err != nil {
		return Value{}, err
	}
	if n != len(enc) {
		return Value{}, fmt.Errorf("%w: decoded %d of %d bytes", ErrTrailing, n, len(enc))
	}
	return out, nil
}
