package xcode

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func sampleValues() []Value {
	return []Value{
		BytesValue(nil),
		BytesValue([]byte{0x00}),
		BytesValue(bytes.Repeat([]byte{0xAB}, 300)), // forces BER long-form length
		StringValue(""),
		StringValue("hello, 世界"),
		Int32Value(0),
		Int32Value(1),
		Int32Value(-1),
		Int32Value(127),
		Int32Value(128),
		Int32Value(-128),
		Int32Value(-129),
		Int32Value(math.MaxInt32),
		Int32Value(math.MinInt32),
		Int64Value(math.MaxInt64),
		Int64Value(math.MinInt64),
		Int64Value(1 << 40),
		Int32sValue(nil),
		Int32sValue([]int32{0}),
		Int32sValue([]int32{1, -1, 127, -128, 32767, -32768, math.MaxInt32, math.MinInt32}),
	}
}

func TestRoundtripAllCodecs(t *testing.T) {
	for _, c := range Codecs() {
		for i, v := range sampleValues() {
			got, err := Roundtrip(c, v)
			if err != nil {
				t.Errorf("%s value %d (%v): %v", c.Name(), i, v.Kind, err)
				continue
			}
			if !got.Equal(v) {
				t.Errorf("%s value %d: roundtrip mismatch: got %+v want %+v", c.Name(), i, got, v)
			}
		}
	}
}

func TestSizeValueExact(t *testing.T) {
	for _, c := range Codecs() {
		for i, v := range sampleValues() {
			enc, err := c.EncodeValue(nil, v)
			if err != nil {
				t.Fatalf("%s value %d: %v", c.Name(), i, err)
			}
			size, err := c.SizeValue(v)
			if err != nil {
				t.Fatalf("%s SizeValue %d: %v", c.Name(), i, err)
			}
			if size != len(enc) {
				t.Errorf("%s value %d (%v): SizeValue = %d, encoded %d bytes",
					c.Name(), i, v.Kind, size, len(enc))
			}
		}
	}
}

func TestEncodeAppends(t *testing.T) {
	// Encoders must append, not clobber.
	for _, c := range Codecs() {
		prefix := []byte{0xDE, 0xAD}
		out, err := c.EncodeValue(append([]byte(nil), prefix...), Int32Value(42))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(out, prefix) {
			t.Errorf("%s: encode clobbered prefix", c.Name())
		}
	}
}

func TestDecodeConsumesExactly(t *testing.T) {
	// Decoding with trailing garbage must consume only the value.
	for _, c := range Codecs() {
		enc, err := c.EncodeValue(nil, Int32sValue([]int32{5, 6, 7}))
		if err != nil {
			t.Fatal(err)
		}
		n := len(enc)
		enc = append(enc, 0xFF, 0xFF, 0xFF)
		_, got, err := c.DecodeValue(enc)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if got != n {
			t.Errorf("%s: consumed %d, want %d", c.Name(), got, n)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	// Every prefix of a valid encoding must fail cleanly (no panic) with
	// a truncation-class error, for every codec.
	for _, c := range Codecs() {
		for _, v := range sampleValues() {
			enc, err := c.EncodeValue(nil, v)
			if err != nil {
				t.Fatal(err)
			}
			for cut := 0; cut < len(enc); cut++ {
				if _, _, err := c.DecodeValue(enc[:cut]); err == nil {
					// A prefix may itself decode as a shorter valid value
					// only if it consumes exactly cut bytes — never true
					// for a strict prefix of a single value encoding in
					// these formats, except the degenerate empty cases.
					t.Errorf("%s: prefix %d/%d of %v decoded without error",
						c.Name(), cut, len(enc), v.Kind)
				}
			}
		}
	}
}

func TestBERKnownEncodings(t *testing.T) {
	cases := []struct {
		v    Value
		want []byte
	}{
		{Int32Value(0), []byte{0x02, 0x01, 0x00}},
		{Int32Value(127), []byte{0x02, 0x01, 0x7F}},
		{Int32Value(128), []byte{0x02, 0x02, 0x00, 0x80}},
		{Int32Value(256), []byte{0x02, 0x02, 0x01, 0x00}},
		{Int32Value(-128), []byte{0x02, 0x01, 0x80}},
		{Int32Value(-129), []byte{0x02, 0x02, 0xFF, 0x7F}},
		{BytesValue([]byte{0x01, 0x02}), []byte{0x04, 0x02, 0x01, 0x02}},
		{Int32sValue([]int32{1, 2}), []byte{0x30, 0x06, 0x02, 0x01, 0x01, 0x02, 0x01, 0x02}},
	}
	for _, cse := range cases {
		got, err := BER{}.EncodeValue(nil, cse.v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, cse.want) {
			t.Errorf("BER(%+v) = % x, want % x", cse.v, got, cse.want)
		}
	}
}

func TestBERLongFormLength(t *testing.T) {
	// 300-byte OCTET STRING: tag, 0x82, 0x01, 0x2C, content.
	enc, err := BER{}.EncodeValue(nil, BytesValue(make([]byte, 300)))
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] != TagOctetString || enc[1] != 0x82 || enc[2] != 0x01 || enc[3] != 0x2C {
		t.Errorf("long-form header = % x", enc[:4])
	}
	if len(enc) != 304 {
		t.Errorf("len = %d, want 304", len(enc))
	}
}

func TestBERRejectsNonMinimalInteger(t *testing.T) {
	// 0x00 0x7F is a redundant leading zero.
	_, _, err := ParseBERInt([]byte{0x02, 0x02, 0x00, 0x7F})
	if !errors.Is(err, ErrNotMinimal) {
		t.Errorf("err = %v, want ErrNotMinimal", err)
	}
	_, _, err = ParseBERInt([]byte{0x02, 0x02, 0xFF, 0x80})
	if !errors.Is(err, ErrNotMinimal) {
		t.Errorf("err = %v, want ErrNotMinimal", err)
	}
}

func TestBERRejectsIndefiniteLength(t *testing.T) {
	_, _, _, err := ParseBERHeader([]byte{0x30, 0x80, 0x00, 0x00})
	if !errors.Is(err, ErrBadIndef) {
		t.Errorf("err = %v, want ErrBadIndef", err)
	}
}

func TestBERRejectsEmptyAndOversizeInteger(t *testing.T) {
	if _, _, err := ParseBERInt([]byte{0x02, 0x00}); !errors.Is(err, ErrBadValue) {
		t.Errorf("empty INTEGER err = %v", err)
	}
	huge := append([]byte{0x02, 0x09}, make([]byte, 9)...)
	if _, _, err := ParseBERInt(huge); !errors.Is(err, ErrOverflow) {
		t.Errorf("9-octet INTEGER err = %v", err)
	}
}

func TestBERRejectsWrongTag(t *testing.T) {
	if _, _, err := ParseBERInt([]byte{0x04, 0x01, 0x00}); !errors.Is(err, ErrBadTag) {
		t.Errorf("err = %v, want ErrBadTag", err)
	}
	if _, _, err := (BER{}).DecodeValue([]byte{0x5F, 0x01, 0x00}); !errors.Is(err, ErrBadTag) {
		t.Errorf("unknown tag err = %v, want ErrBadTag", err)
	}
}

func TestBERIntProperty(t *testing.T) {
	f := func(v int64) bool {
		enc := AppendBERInt(nil, v)
		if len(enc) != BERIntSize(v) {
			return false
		}
		got, n, err := ParseBERInt(enc)
		return err == nil && n == len(enc) && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBERIntMinimality(t *testing.T) {
	// Content length must be the minimal two's-complement width.
	cases := []struct {
		v    int64
		want int
	}{
		{0, 1}, {127, 1}, {-128, 1}, {128, 2}, {-129, 2},
		{32767, 2}, {32768, 3}, {-32768, 2}, {-32769, 3},
		{math.MaxInt64, 8}, {math.MinInt64, 8},
	}
	for _, c := range cases {
		if got := berIntContentLen(c.v); got != c.want {
			t.Errorf("berIntContentLen(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestXDRAlignment(t *testing.T) {
	// 5-byte opaque: 4 disc + 4 len + 5 data + 3 pad = 16.
	enc, err := XDR{}.EncodeValue(nil, BytesValue([]byte{1, 2, 3, 4, 5}))
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 16 {
		t.Errorf("len = %d, want 16", len(enc))
	}
	if len(enc)%4 != 0 {
		t.Error("XDR encoding not 4-aligned")
	}
}

func TestXDRRejectsNonzeroPad(t *testing.T) {
	enc, _ := XDR{}.EncodeValue(nil, BytesValue([]byte{1}))
	enc[len(enc)-1] = 0xFF
	if _, _, err := (XDR{}).DecodeValue(enc); !errors.Is(err, ErrBadValue) {
		t.Errorf("err = %v, want ErrBadValue", err)
	}
}

func TestXDRInt32RangeCheck(t *testing.T) {
	_, err := XDR{}.EncodeValue(nil, Value{Kind: KindInt32, I64: math.MaxInt32 + 1})
	if !errors.Is(err, ErrOverflow) {
		t.Errorf("err = %v, want ErrOverflow", err)
	}
}

func TestByID(t *testing.T) {
	for _, c := range Codecs() {
		got, err := ByID(c.ID())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != c.Name() {
			t.Errorf("ByID(%d) = %s, want %s", c.ID(), got.Name(), c.Name())
		}
	}
	if _, err := ByID(0); !errors.Is(err, ErrUnknownID) {
		t.Errorf("ByID(0) err = %v", err)
	}
	if _, err := ByID(200); !errors.Is(err, ErrUnknownID) {
		t.Errorf("ByID(200) err = %v", err)
	}
}

func TestValueEqualNumericWidths(t *testing.T) {
	if !Int32Value(7).Equal(Int64Value(7)) {
		t.Error("int32(7) != int64(7)")
	}
	if Int32Value(7).Equal(Int64Value(8)) {
		t.Error("int32(7) == int64(8)")
	}
	if Int32Value(7).Equal(StringValue("7")) {
		t.Error("int == string")
	}
	if !BytesValue(nil).Equal(BytesValue([]byte{})) {
		t.Error("nil bytes != empty bytes")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindBytes: "bytes", KindInt32: "int32", KindInt64: "int64",
		KindString: "string", KindInt32s: "int32s", Kind(99): "Kind(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestUnsupportedKindErrors(t *testing.T) {
	bad := Value{Kind: Kind(77)}
	for _, c := range Codecs() {
		if _, err := c.EncodeValue(nil, bad); err == nil {
			t.Errorf("%s: encoding bad kind succeeded", c.Name())
		}
		if _, err := c.SizeValue(bad); err == nil {
			t.Errorf("%s: sizing bad kind succeeded", c.Name())
		}
	}
}

func TestMessageRoundtrip(t *testing.T) {
	msg := Message{
		Int32Value(42),
		StringValue("proc"),
		BytesValue([]byte{1, 2, 3}),
		Int32sValue([]int32{-5, 5}),
	}
	for _, c := range Codecs() {
		enc, err := EncodeMessage(c, nil, msg)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		size, err := SizeMessage(c, msg)
		if err != nil {
			t.Fatal(err)
		}
		if size != len(enc) {
			t.Errorf("%s: SizeMessage = %d, encoded %d", c.Name(), size, len(enc))
		}
		got, gotCodec, n, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if n != len(enc) {
			t.Errorf("%s: consumed %d of %d", c.Name(), n, len(enc))
		}
		if gotCodec.ID() != c.ID() {
			t.Errorf("%s: decoded codec %s", c.Name(), gotCodec.Name())
		}
		if len(got) != len(msg) {
			t.Fatalf("%s: %d values, want %d", c.Name(), len(got), len(msg))
		}
		for i := range msg {
			if !got[i].Equal(msg[i]) {
				t.Errorf("%s value %d: %+v != %+v", c.Name(), i, got[i], msg[i])
			}
		}
	}
}

func TestMessageEmptyRoundtrip(t *testing.T) {
	enc, err := EncodeMessage(BER{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, n, err := DecodeMessage(enc)
	if err != nil || n != 3 || len(got) != 0 {
		t.Errorf("empty message: got %v, n=%d, err=%v", got, n, err)
	}
}

func TestMessageDecodeErrors(t *testing.T) {
	if _, _, _, err := DecodeMessage(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil message err = %v", err)
	}
	if _, _, _, err := DecodeMessage([]byte{0, 0, 0}); !errors.Is(err, ErrUnknownID) {
		t.Errorf("bad syntax err = %v", err)
	}
	// Claims one value but has none.
	if _, _, _, err := DecodeMessage([]byte{byte(SyntaxBER), 0, 1}); err == nil {
		t.Error("short message decoded")
	}
}

func TestCrossCodecSizesOrdered(t *testing.T) {
	// For the canonical integer-array workload, BER must be the largest
	// encoding (per-element TLV) and raw/LWTS the smallest — this is the
	// size side of the E3 experiment.
	ints := make([]int32, 1000)
	for i := range ints {
		ints[i] = int32(i * 3141)
	}
	v := Int32sValue(ints)
	size := map[string]int{}
	for _, c := range Codecs() {
		n, err := c.SizeValue(v)
		if err != nil {
			t.Fatal(err)
		}
		size[c.Name()] = n
	}
	if size["ber"] <= size["raw"] {
		t.Errorf("BER (%d) should exceed raw (%d) for int arrays", size["ber"], size["raw"])
	}
	if size["xdr"] < size["raw"] {
		t.Errorf("XDR (%d) should be >= raw (%d)", size["xdr"], size["raw"])
	}
}

func TestDecodeValueFuzzNoPanics(t *testing.T) {
	f := func(data []byte) bool {
		for _, c := range Codecs() {
			c.DecodeValue(data) // must not panic
		}
		DecodeMessage(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestRoundtripPropertyInt32s(t *testing.T) {
	f := func(ints []int32) bool {
		v := Int32sValue(ints)
		for _, c := range Codecs() {
			got, err := Roundtrip(c, v)
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRoundtripPropertyBytes(t *testing.T) {
	f := func(b []byte) bool {
		v := BytesValue(b)
		for _, c := range Codecs() {
			got, err := Roundtrip(c, v)
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeqRoundtripAllCodecs(t *testing.T) {
	// A realistic RPC-shaped record: mixed scalar kinds plus nesting.
	rec := SeqValue(
		StringValue("open"),
		Int32Value(42),
		BytesValue([]byte{9, 8, 7}),
		SeqValue(
			Int64Value(1<<40),
			StringValue("nested"),
		),
		Int32sValue([]int32{-1, 0, 1}),
	)
	for _, c := range Codecs() {
		got, err := Roundtrip(c, rec)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !got.Equal(rec) {
			t.Errorf("%s: nested roundtrip mismatch: %+v", c.Name(), got)
		}
		// SizeValue must stay exact for nested values.
		enc, _ := c.EncodeValue(nil, rec)
		size, err := c.SizeValue(rec)
		if err != nil {
			t.Fatal(err)
		}
		if size != len(enc) {
			t.Errorf("%s: SizeValue %d != encoded %d", c.Name(), size, len(enc))
		}
	}
}

func TestSeqEmptyAndHomogeneous(t *testing.T) {
	for _, c := range Codecs() {
		// Empty sequence.
		got, err := Roundtrip(c, SeqValue())
		if err != nil {
			t.Fatalf("%s empty: %v", c.Name(), err)
		}
		if !got.Equal(SeqValue()) {
			t.Errorf("%s: empty seq mismatch: %+v", c.Name(), got)
		}
		// A seq of all-int32 values: BER legitimately decodes this as
		// KindInt32s; Equal treats the forms as equal.
		homo := SeqValue(Int32Value(1), Int32Value(2), Int32Value(3))
		got, err = Roundtrip(c, homo)
		if err != nil {
			t.Fatalf("%s homo: %v", c.Name(), err)
		}
		if !got.Equal(homo) || !homo.Equal(got) {
			t.Errorf("%s: homogeneous seq mismatch: %+v", c.Name(), got)
		}
	}
}

func TestSeqDepthBombRejected(t *testing.T) {
	// Nesting deeper than MaxDepth must be refused at encode time...
	deep := Int32Value(1)
	for i := 0; i < MaxDepth+2; i++ {
		deep = SeqValue(deep)
	}
	for _, c := range Codecs() {
		if _, err := c.EncodeValue(nil, deep); !errors.Is(err, ErrDepth) {
			t.Errorf("%s: encode depth bomb err = %v", c.Name(), err)
		}
		if _, err := c.SizeValue(deep); !errors.Is(err, ErrDepth) {
			t.Errorf("%s: size depth bomb err = %v", c.Name(), err)
		}
	}
	// ...and crafted wire nesting must be refused at decode time. Build
	// a legal depth-(MaxDepth) value, then wrap its encoding manually
	// (twice: BER's homogeneous-integer fast path legitimately absorbs
	// the innermost SEQUENCE-of-INTEGER level without recursing).
	ok := Int32Value(1)
	for i := 0; i < MaxDepth; i++ {
		ok = SeqValue(ok)
	}
	for _, c := range Codecs() {
		enc, err := c.EncodeValue(nil, ok)
		if err != nil {
			t.Fatalf("%s: legal depth refused: %v", c.Name(), err)
		}
		wrapped := enc
		for w := 0; w < 2; w++ {
			switch c.(type) {
			case BER:
				wrapped = append(AppendBERHeader(nil, TagSequence, len(wrapped)), wrapped...)
			case XDR:
				hdr := appendUint32(nil, 6) // xdrSeq
				hdr = appendUint32(hdr, 1)
				wrapped = append(hdr, wrapped...)
			default:
				wrapped = append(appendRawHeader(nil, KindSeq, 1), wrapped...)
			}
		}
		if _, _, err := c.DecodeValue(wrapped); !errors.Is(err, ErrDepth) {
			t.Errorf("%s: decode depth bomb err = %v", c.Name(), err)
		}
	}
}

func TestSeqFuzzNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		for _, c := range Codecs() {
			c.DecodeValue(data)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSeqInMessages(t *testing.T) {
	msg := Message{
		SeqValue(StringValue("a"), SeqValue(Int32Value(1))),
		Int32Value(2),
	}
	for _, c := range Codecs() {
		enc, err := EncodeMessage(c, nil, msg)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, _, n, err := DecodeMessage(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("%s: decode %v (n=%d)", c.Name(), err, n)
		}
		if len(got) != 2 || !got[0].Equal(msg[0]) {
			t.Errorf("%s: %+v", c.Name(), got)
		}
	}
}
