package xcode

import (
	"encoding/binary"
	"fmt"
	"math"
)

// XDR discriminant values (a self-describing XDR union over the value
// kinds; classic XDR is schema-driven, so the discriminant stands in for
// the schema here).
const (
	xdrBytes  uint32 = 1
	xdrInt32  uint32 = 2
	xdrInt64  uint32 = 3
	xdrString uint32 = 4
	xdrInt32s uint32 = 5
	xdrSeq    uint32 = 6
)

// XDR implements a subset of Sun XDR (RFC 1014): everything is built
// from 4-byte big-endian units; opaque data and strings are padded to a
// multiple of 4.
type XDR struct{}

// ID implements Codec.
func (XDR) ID() SyntaxID { return SyntaxXDR }

// Name implements Codec.
func (XDR) Name() string { return "xdr" }

func xdrPad(n int) int { return (4 - n%4) % 4 }

func appendUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// EncodeValue implements Codec.
func (x XDR) EncodeValue(dst []byte, v Value) ([]byte, error) {
	return x.encode(dst, v, 0)
}

func (x XDR) encode(dst []byte, v Value, depth int) ([]byte, error) {
	if depth > MaxDepth {
		return nil, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	switch v.Kind {
	case KindBytes:
		dst = appendUint32(dst, xdrBytes)
		dst = appendUint32(dst, uint32(len(v.Bytes)))
		dst = append(dst, v.Bytes...)
		for i := 0; i < xdrPad(len(v.Bytes)); i++ {
			dst = append(dst, 0)
		}
		return dst, nil
	case KindString:
		dst = appendUint32(dst, xdrString)
		dst = appendUint32(dst, uint32(len(v.Str)))
		dst = append(dst, v.Str...)
		for i := 0; i < xdrPad(len(v.Str)); i++ {
			dst = append(dst, 0)
		}
		return dst, nil
	case KindInt32:
		if v.I64 < math.MinInt32 || v.I64 > math.MaxInt32 {
			return nil, fmt.Errorf("%w: %d as XDR int", ErrOverflow, v.I64)
		}
		dst = appendUint32(dst, xdrInt32)
		return appendUint32(dst, uint32(int32(v.I64))), nil
	case KindInt64:
		dst = appendUint32(dst, xdrInt64)
		return appendUint64(dst, uint64(v.I64)), nil
	case KindInt32s:
		dst = appendUint32(dst, xdrInt32s)
		dst = appendUint32(dst, uint32(len(v.Ints)))
		for _, e := range v.Ints {
			dst = appendUint32(dst, uint32(e))
		}
		return dst, nil
	case KindSeq:
		dst = appendUint32(dst, xdrSeq)
		dst = appendUint32(dst, uint32(len(v.Seq)))
		for i := range v.Seq {
			var err error
			dst, err = x.encode(dst, v.Seq[i], depth+1)
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("%w: %v in XDR", ErrKind, v.Kind)
	}
}

// SizeValue implements Codec.
func (x XDR) SizeValue(v Value) (int, error) {
	return x.sizeOf(v, 0)
}

func (x XDR) sizeOf(v Value, depth int) (int, error) {
	if depth > MaxDepth {
		return 0, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	switch v.Kind {
	case KindBytes:
		return 8 + len(v.Bytes) + xdrPad(len(v.Bytes)), nil
	case KindString:
		return 8 + len(v.Str) + xdrPad(len(v.Str)), nil
	case KindInt32:
		return 8, nil
	case KindInt64:
		return 12, nil
	case KindInt32s:
		return 8 + 4*len(v.Ints), nil
	case KindSeq:
		total := 8
		for i := range v.Seq {
			n, err := x.sizeOf(v.Seq[i], depth+1)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	default:
		return 0, fmt.Errorf("%w: %v in XDR", ErrKind, v.Kind)
	}
}

// DecodeValue implements Codec.
func (x XDR) DecodeValue(src []byte) (Value, int, error) {
	return x.decode(src, 0)
}

func (x XDR) decode(src []byte, depth int) (Value, int, error) {
	if depth > MaxDepth {
		return Value{}, 0, fmt.Errorf("%w: depth %d", ErrDepth, depth)
	}
	if len(src) < 4 {
		return Value{}, 0, fmt.Errorf("%w: XDR discriminant", ErrTruncated)
	}
	disc := binary.BigEndian.Uint32(src)
	body := src[4:]
	switch disc {
	case xdrInt32:
		if len(body) < 4 {
			return Value{}, 0, fmt.Errorf("%w: XDR int", ErrTruncated)
		}
		return Int32Value(int32(binary.BigEndian.Uint32(body))), 8, nil
	case xdrInt64:
		if len(body) < 8 {
			return Value{}, 0, fmt.Errorf("%w: XDR hyper", ErrTruncated)
		}
		return Int64Value(int64(binary.BigEndian.Uint64(body))), 12, nil
	case xdrBytes, xdrString:
		if len(body) < 4 {
			return Value{}, 0, fmt.Errorf("%w: XDR length", ErrTruncated)
		}
		n := binary.BigEndian.Uint32(body)
		if n > uint32(len(body)-4) {
			return Value{}, 0, fmt.Errorf("%w: XDR opaque of %d bytes", ErrTruncated, n)
		}
		pad := xdrPad(int(n))
		total := 8 + int(n) + pad
		if len(src) < total {
			return Value{}, 0, fmt.Errorf("%w: XDR padding", ErrTruncated)
		}
		for _, p := range body[4+n : 4+int(n)+pad] {
			if p != 0 {
				return Value{}, 0, fmt.Errorf("%w: nonzero XDR pad", ErrBadValue)
			}
		}
		if disc == xdrString {
			return StringValue(string(body[4 : 4+n])), total, nil
		}
		out := make([]byte, n)
		copy(out, body[4:4+n])
		return BytesValue(out), total, nil
	case xdrInt32s:
		if len(body) < 4 {
			return Value{}, 0, fmt.Errorf("%w: XDR array count", ErrTruncated)
		}
		n := binary.BigEndian.Uint32(body)
		if uint64(n)*4 > uint64(len(body)-4) {
			return Value{}, 0, fmt.Errorf("%w: XDR array of %d", ErrTruncated, n)
		}
		ints := make([]int32, n)
		off := 4
		for i := range ints {
			ints[i] = int32(binary.BigEndian.Uint32(body[off:]))
			off += 4
		}
		return Int32sValue(ints), 4 + off, nil
	case xdrSeq:
		if len(body) < 4 {
			return Value{}, 0, fmt.Errorf("%w: XDR seq count", ErrTruncated)
		}
		n := binary.BigEndian.Uint32(body)
		if n > uint32(len(body)) { // each element needs >= 4 bytes
			return Value{}, 0, fmt.Errorf("%w: XDR seq of %d", ErrTruncated, n)
		}
		seq := make([]Value, 0, n)
		off := 8
		for i := uint32(0); i < n; i++ {
			v, used, err := x.decode(src[off:], depth+1)
			if err != nil {
				return Value{}, 0, fmt.Errorf("seq element %d: %w", i, err)
			}
			seq = append(seq, v)
			off += used
		}
		return Value{Kind: KindSeq, Seq: seq}, off, nil
	default:
		return Value{}, 0, fmt.Errorf("%w: XDR discriminant %d", ErrBadValue, disc)
	}
}
